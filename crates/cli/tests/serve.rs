//! End-to-end `mimd serve` acceptance: a 64-node-torus churn trace
//! piped through the real binary produces per-event JSONL records
//! byte-identical to `mimd replay` on the same trace.

use std::io::Write;
use std::process::{Command, Stdio};

use rand::rngs::StdRng;
use rand::SeedableRng;

use mimd_online::{write_trace, DynamicWorkload, TraceHeader};
use mimd_service::{trace_requests, Response};
use mimd_taskgraph::clustering::region::random_region_clustering;
use mimd_taskgraph::workloads::{churn_trace, ChurnRegime};
use mimd_taskgraph::{ClusteredProblemGraph, GeneratorConfig, LayeredDagGenerator, TraceEvent};
use mimd_topology::TopologySpec;

fn torus_trace(seed: u64, events: usize) -> (TraceHeader, Vec<TraceEvent>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = LayeredDagGenerator::new(GeneratorConfig {
        tasks: 128,
        ..GeneratorConfig::default()
    })
    .unwrap();
    let problem = gen.generate(&mut rng);
    let clustering = random_region_clustering(&problem, 64, &mut rng).unwrap();
    let base = ClusteredProblemGraph::new(problem, clustering).unwrap();
    let trace = churn_trace(&base, events, ChurnRegime::Mixed, &mut rng);
    let header = TraceHeader {
        topology: TopologySpec::Torus { rows: 8, cols: 8 },
        topology_seed: None,
        snapshot: DynamicWorkload::from_clustered(&base).snapshot(),
    };
    (header, trace)
}

/// Run the `mimd` binary with `args`, feeding `stdin`, returning stdout.
fn run_mimd(args: &[&str], stdin: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mimd"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("mimd binary spawns");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let output = child.wait_with_output().unwrap();
    assert!(output.status.success(), "mimd {args:?} failed");
    String::from_utf8(output.stdout).unwrap()
}

#[test]
fn stats_interval_emits_periodic_stderr_lines() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mimd"))
        .args(["serve", "--stats-interval", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("mimd binary spawns");
    let mut stdin = child.stdin.take().unwrap();
    stdin.write_all(b"{\"op\":\"catalog\"}\n").unwrap();
    stdin.flush().unwrap();
    // Hold stdin open across two emitter periods, then EOF.
    std::thread::sleep(std::time::Duration::from_millis(2300));
    drop(stdin);
    let output = child.wait_with_output().unwrap();
    assert!(output.status.success());

    let stderr = String::from_utf8(output.stderr).unwrap();
    let snapshots: Vec<&str> = stderr
        .lines()
        .filter(|line| line.starts_with("stats uptime_s="))
        .collect();
    assert!(snapshots.len() >= 2, "want >=2 snapshots in:\n{stderr}");
    assert!(
        snapshots.iter().all(|l| l.contains("requests_served=1")),
        "{stderr}"
    );

    // stdout stays pure protocol: exactly one parseable response.
    let stdout = String::from_utf8(output.stdout).unwrap();
    let responses: Vec<Response> = stdout
        .lines()
        .map(|line| Response::from_json_line(line).unwrap_or_else(|e| panic!("{line}: {e}")))
        .collect();
    assert_eq!(responses.len(), 1, "{stdout}");
}

#[test]
fn listen_serve_with_loadgen_drains_cleanly() {
    let socket = std::env::temp_dir().join(format!("mimd-cli-listen-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let mut server = Command::new(env!("CARGO_BIN_EXE_mimd"))
        .args([
            "serve",
            "--listen",
            socket.to_str().unwrap(),
            "--shards",
            "4",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("mimd binary spawns");
    // The socket file appearing is the bind signal.
    for _ in 0..400 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(socket.exists(), "server never bound {}", socket.display());

    let loadgen = Command::new(env!("CARGO_BIN_EXE_mimd"))
        .args([
            "loadgen",
            "--connect",
            socket.to_str().unwrap(),
            "--sessions",
            "16",
            "--connections",
            "4",
            "--events",
            "3",
            "--json",
        ])
        .stdin(Stdio::null())
        .output()
        .expect("loadgen spawns");
    let loadgen_err = String::from_utf8(loadgen.stderr).unwrap();
    assert!(loadgen.status.success(), "loadgen failed:\n{loadgen_err}");
    assert!(loadgen_err.contains("req/s="), "{loadgen_err}");
    let report: mimd_server::LoadReport =
        serde_json::from_str(String::from_utf8(loadgen.stdout).unwrap().trim()).unwrap();
    assert_eq!(report.errors, 0);
    assert_eq!(report.sessions_closed, 16);
    // open + 3 events + close, per session.
    assert_eq!(report.responses, 16 * 5);
    assert!(report.requests_per_sec > 0.0);

    // EOF on the server's stdin is the drain signal.
    drop(server.stdin.take());
    let output = server.wait_with_output().unwrap();
    assert!(output.status.success());
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("listening on"), "{stderr}");
    assert!(stderr.contains("serve: drained;"), "{stderr}");
    assert!(
        stderr.contains("80 requests (0 rejected, 0 malformed) over 4 connections"),
        "{stderr}"
    );
    assert!(!socket.exists(), "drain removes the socket file");
}

#[test]
fn served_trace_is_byte_identical_to_replay() {
    let seed = 7;
    let (header, events) = torus_trace(1991, 60);

    // `mimd replay` over the trace file format on stdin.
    let mut trace_file = Vec::new();
    write_trace(&mut trace_file, &header, &events).unwrap();
    let replayed = run_mimd(
        &["replay", "--trace", "-", "--seed", &seed.to_string()],
        &String::from_utf8(trace_file).unwrap(),
    );
    let replayed: Vec<&str> = replayed.lines().collect();
    assert_eq!(replayed.len(), events.len() + 1, "init + one per event");

    // `mimd serve` over the same trace converted to protocol requests
    // (fresh service: the first session id is 1).
    let requests: String = trace_requests(&header, &events, seed, None, 1)
        .iter()
        .map(|r| r.to_json_line() + "\n")
        .collect();
    let served = run_mimd(&["serve"], &requests);
    let records: Vec<String> = served
        .lines()
        .map(|line| Response::from_json_line(line).unwrap_or_else(|e| panic!("{line}: {e}")))
        .filter_map(|response| response.record().map(|r| r.to_json_line()))
        .collect();

    assert_eq!(records, replayed, "served records must equal replay bytes");
}

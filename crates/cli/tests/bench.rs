//! End-to-end `mimd bench` acceptance: the quick suite runs every
//! scenario kind through the real binary, appends to the history
//! trajectory, compares as noise against itself, and the compare gate
//! exits non-zero when the current report is synthetically slowed.

use std::process::{Command, Output, Stdio};

use mimd_bench::BenchReport;

/// Run the `mimd` binary with `args`, returning the raw output
/// (callers check the exit status themselves: the compare gate uses
/// exit code 1 as its verdict).
fn run_mimd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mimd"))
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("mimd binary spawns")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn quick_suite_reports_compares_and_gates() {
    let dir = std::env::temp_dir().join(format!("mimd-bench-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let report_path = dir.join("report.json");
    let history_path = dir.join("history.jsonl");
    let _ = std::fs::remove_file(&history_path);

    // One quick-suite run: report to a file, history appended.
    let run = run_mimd(&[
        "bench",
        "--suite",
        "quick",
        "--reps",
        "2",
        "--out",
        report_path.to_str().unwrap(),
        "--history",
        history_path.to_str().unwrap(),
    ]);
    assert!(run.status.success(), "{}", stderr_of(&run));

    let report = BenchReport::from_json(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(report.suite, "quick");
    assert!(!report.fingerprint.is_empty());
    let kinds: Vec<&str> = report.scenarios.iter().map(|s| s.kind.as_str()).collect();
    for kind in ["job:paper", "job:multilevel", "replay", "service_stream"] {
        assert!(kinds.contains(&kind), "missing {kind} in {kinds:?}");
    }
    for scenario in &report.scenarios {
        assert_eq!(scenario.rep_wall_ns.len(), 2, "{}", scenario.name);
        assert!(scenario.items_per_sec > 0.0, "{}", scenario.name);
        assert!(!scenario.latency.is_empty(), "{}", scenario.name);
    }

    let history = mimd_bench::read_history(&history_path).unwrap();
    assert_eq!(history.len(), 1);
    assert_eq!(history[0].fingerprint, report.fingerprint);

    // A second identical run compared against the first: quality is
    // deterministic and the generous noise floor absorbs wall-clock
    // jitter, so the gate passes.
    let rerun = run_mimd(&[
        "bench",
        "--suite",
        "quick",
        "--reps",
        "2",
        "--no-history",
        "--compare",
        report_path.to_str().unwrap(),
        "--noise-floor",
        "3.0",
    ]);
    assert!(rerun.status.success(), "{}", stderr_of(&rerun));
    assert!(
        stderr_of(&rerun).contains("bench compare:"),
        "{}",
        stderr_of(&rerun)
    );

    // Synthetically slow every scenario 50x: the gate must trip with
    // exit code 1 (not the usage-error code 2).
    let mut slowed = report.clone();
    for scenario in &mut slowed.scenarios {
        scenario.wall_ns *= 50;
        for rep in &mut scenario.rep_wall_ns {
            *rep *= 50;
        }
    }
    let slowed_path = dir.join("slowed.json");
    std::fs::write(&slowed_path, slowed.to_json_pretty() + "\n").unwrap();
    let gated = run_mimd(&[
        "bench",
        "--with",
        slowed_path.to_str().unwrap(),
        "--compare",
        report_path.to_str().unwrap(),
    ]);
    assert_eq!(gated.status.code(), Some(1), "{}", stderr_of(&gated));
    assert!(
        stderr_of(&gated).contains("REGRESSION"),
        "{}",
        stderr_of(&gated)
    );

    // Mirror direction: the slowed report as baseline makes the real
    // one an improvement, and improvements never trip the gate.
    let improved = run_mimd(&[
        "bench",
        "--with",
        report_path.to_str().unwrap(),
        "--compare",
        slowed_path.to_str().unwrap(),
    ]);
    assert!(improved.status.success(), "{}", stderr_of(&improved));
    assert!(
        stderr_of(&improved).contains("improvement"),
        "{}",
        stderr_of(&improved)
    );
}

//! The `mimd` subcommands.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mimd_core::evaluate::{evaluate_assignment, random_mapping_average};
use mimd_core::schedule::EvaluationModel;
use mimd_core::{Assignment, Mapper};
use mimd_graph::dot;
use mimd_report::{Gantt, GanttTask, Table};
use mimd_sim::{simulate, SimConfig};
use mimd_taskgraph::clustering::comm_greedy::comm_greedy_clustering;
use mimd_taskgraph::clustering::region::random_region_clustering;
use mimd_taskgraph::{
    paper, ClusteredProblemGraph, GeneratorConfig, LayeredDagGenerator, ProblemGraph,
};
use mimd_telemetry::{GainLedger, Journal, JournalSnapshot, Recorder};

use crate::args::{build_topology, parse_workload, Flags};

/// Usage text printed on errors.
pub const USAGE: &str = "\
usage: mimd <command> [flags]

commands:
  generate   --tasks <n> [--seed <u64>] [--width <n>] [--dot] [--json]
  topology   --spec <kind:params> [--seed <u64>] [--dot]
  map        (--tasks <n> | --workload <kind:params> | --load <file.json>)
             --spec <kind:params> [--seed <u64>] [--reps <n>]
             [--algorithm <name>] [--direct-threshold <n>]
             [--refine-rounds <n>] [--refine-batch <n>]
             [--refine-threads <n>]
             [--greedy-clustering] [--serialized] [--gantt]
  simulate   (--tasks <n> | --workload <kind:params>) --spec <kind:params>
             [--seed <u64>] [--contention] [--serialize]
  explain    (--tasks <n> | --workload <kind:params>) --spec <kind:params>
             [--seed <u64>] [--algorithm <name>] [--clustering <kind>]
             [--trace-out <file>] [--chrome-trace <file>]
             — map once, then attribute the mapping's quality: JSON
               report (loads, link traffic, hop histogram, critical
               path, refinement gain ledger) on stdout, human tables
               on stderr
  batch      <jobs.jsonl | -> [--threads <n>] [--summary] [--out <file>]
             [--profile] [--profile-json <file|->]
             [--trace-out <file>] [--chrome-trace <file>]
             — run a JSONL stream of JobSpecs through the engine,
               emitting one JobResult JSONL line per job (stdin with -);
               --profile prints the telemetry phase breakdown to stderr
  sweep      --workloads <w1,w2,..> --specs <t1,t2,..>
             [--algos <a1,a2,..>] [--seeds <n>] [--threads <n>]
             [--clustering region|iid|sarkar|comm_greedy]
             [--summary] [--out <file>]
             [--profile] [--profile-json <file|->]
             [--trace-out <file>] [--chrome-trace <file>]
             — run the cross-product workloads × topologies × algorithms
               × seeds through the engine
  trace      (--tasks <n> | --workload <kind:params>) --spec <kind:params>
             [--events <n>] [--regime arrivals|drift|mixed] [--seed <u64>]
             [--out <file>]
             — generate a synthetic churn trace (JSONL: header + events)
  replay     --trace <file|-> [--seed <u64>] [--migration-penalty <t>]
             [--staleness <f>] [--local-rounds <n>] [--region-size <n>]
             [--scratch] [--summary] [--out <file>]
             [--profile] [--profile-json <file|->]
             [--trace-out <file>] [--chrome-trace <file>]
             — replay a trace through the incremental remapper, one
               JSONL record per event (--scratch forces a full V-cycle
               per event for comparison); --profile prints phase timing
               to stderr, never touching the stdout record stream;
               --trace-out/--chrome-trace export the event journal
  serve      [--max-sessions <n>] [--telemetry] [--slow-ms <n>]
             [--stats-interval <secs>]
             [--listen <host:port|socket-path>] [--shards <n>]
             [--queue-depth <k>]
             [--trace-out <file>] [--chrome-trace <file>]
             — long-running MappingService loop: one JSONL Request per
               stdin line (map_once | open_session | apply |
               close_session | catalog | stats), one JSONL Response per
               stdout line; sessions share topology artifacts with
               one-shot jobs through one cache; --telemetry records
               spans/counters served back by the stats op; --slow-ms
               logs slow requests to stderr; --stats-interval prints a
               one-line stats snapshot to stderr every n seconds;
               --trace-out/--chrome-trace export the event journal on
               exit; --listen serves concurrent connections on a TCP
               address or Unix socket path instead of stdin — sessions
               hash to --shards worker shards (per-session FIFO kept),
               a full per-shard queue (--queue-depth) answers
               overloaded, and stdin EOF drains gracefully
  loadgen    --connect <host:port|socket-path> [--sessions <n>]
             [--connections <n>] [--events <n>] [--tasks <n>]
             [--spec <kind:params>] [--regime arrivals|drift|mixed]
             [--seed <u64>] [--rate <opens/sec>] [--json]
             — drive concurrent open/apply/close sessions against a
               listening `mimd serve --listen` and report sustained
               req/s plus p50/p90/p99 latency (human line on stderr,
               JSON report on stdout with --json)
  bench      [--suite quick|full] [--reps <k>] [--list]
             [--out <file|->] [--history <file>] [--no-history]
             [--compare <baseline.json>] [--with <report.json>]
             [--noise-floor <frac>] [--quality-tolerance <pts>]
             — run a declarative benchmark suite (flat map, multilevel
               V-cycle, incremental replay, service stream) min-of-k
               and emit a versioned BenchReport; appends to
               BENCH_history.jsonl unless --no-history; --compare
               classifies each metric vs a baseline report as
               improvement/regression/noise (exit 1 on regression);
               --with compares an existing report instead of running
  algorithms (no flags) — list every registry algorithm with a
               one-line description
  paper      (no flags) — reproduce the worked example's artifacts

topology specs : hypercube:3  mesh:3x4  torus:3x4  ring:8  chain:8
                 star:8  tree:15  complete:8  fattree:4x4  clusters:8x32
                 random:16@0.1
workload specs : ge:12  stencil:16x8  fft:5  dnc:4  pipe:4x16
                 tasks:96  paper:120
algorithms     : paper  multilevel  incremental  random  bokhari  lee
                 annealing  pairwise  (see `mimd algorithms`)";

/// Route a command line to its handler.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("no command given".into());
    };
    if cmd == "batch" {
        // `batch` takes a positional input path before its flags.
        let (input, rest) = match rest.split_first() {
            Some((input, rest)) if !input.starts_with("--") => (input.as_str(), rest),
            _ => return Err("batch needs a jobs file ('-' for stdin)".into()),
        };
        return cmd_batch(input, &Flags::parse(rest)?);
    }
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "topology" => cmd_topology(&flags),
        "map" => cmd_map(&flags),
        "simulate" => cmd_simulate(&flags),
        "explain" => cmd_explain(&flags),
        "sweep" => cmd_sweep(&flags),
        "trace" => cmd_trace(&flags),
        "replay" => cmd_replay(&flags),
        "serve" => cmd_serve(&flags),
        "loadgen" => cmd_loadgen(&flags),
        "bench" => cmd_bench(&flags),
        "algorithms" => cmd_algorithms(&flags),
        "paper" => cmd_paper(&flags),
        other => Err(format!("unknown command '{other}'")),
    }
}

fn problem_from_flags(flags: &Flags, rng: &mut StdRng) -> Result<ProblemGraph, String> {
    if let Some(path) = flags.get("load") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        return serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"));
    }
    match flags.get("workload") {
        Some(spec) => parse_workload(spec),
        None => {
            let tasks = flags.num("tasks", 96usize)?;
            let width = flags.num("width", (tasks / 8).clamp(3, 16))?;
            let gen = LayeredDagGenerator::new(GeneratorConfig {
                tasks,
                avg_width: width,
                locality_window: Some(1),
                ..GeneratorConfig::default()
            })
            .map_err(|e| e.to_string())?;
            Ok(gen.generate(rng))
        }
    }
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    flags.allow_only(&["tasks", "seed", "width", "dot", "json", "workload"])?;
    let mut rng = StdRng::seed_from_u64(flags.num("seed", 1991u64)?);
    let p = problem_from_flags(flags, &mut rng)?;
    if flags.has("dot") {
        let sizes = p.sizes().to_vec();
        print!(
            "{}",
            dot::digraph_to_dot(p.graph(), "problem", |v| Some(format!(
                "{} (w={})",
                v + 1,
                sizes[v]
            )))
        );
        return Ok(());
    }
    if flags.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&p).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!(
        "problem graph: {} tasks, {} edges, sequential {}, critical path {}",
        p.len(),
        p.graph().edge_count(),
        p.sequential_time(),
        p.critical_path()
    );
    Ok(())
}

fn cmd_topology(flags: &Flags) -> Result<(), String> {
    flags.allow_only(&["spec", "seed", "dot"])?;
    let spec = flags.get("spec").ok_or("topology needs --spec")?;
    let mut rng = StdRng::seed_from_u64(flags.num("seed", 1991u64)?);
    let sys = build_topology(spec, &mut rng)?;
    if flags.has("dot") {
        print!("{}", dot::ungraph_to_dot(sys.graph(), "system"));
        return Ok(());
    }
    println!(
        "{}: {} processors, {} links, diameter {}, degrees {:?}",
        sys.name(),
        sys.len(),
        sys.graph().edge_count(),
        sys.diameter(),
        sys.degrees()
    );
    Ok(())
}

fn cmd_map(flags: &Flags) -> Result<(), String> {
    flags.allow_only(&[
        "tasks",
        "workload",
        "load",
        "spec",
        "seed",
        "reps",
        "width",
        "algorithm",
        "direct-threshold",
        "refine-rounds",
        "refine-batch",
        "refine-threads",
        "greedy-clustering",
        "serialized",
        "gantt",
    ])?;
    let spec = flags.get("spec").ok_or("map needs --spec")?;
    let mut rng = StdRng::seed_from_u64(flags.num("seed", 1991u64)?);
    let system = build_topology(spec, &mut rng)?;
    let problem = problem_from_flags(flags, &mut rng)?;
    if problem.len() < system.len() {
        return Err(format!(
            "problem has {} tasks but the machine has {} processors; need np >= ns",
            problem.len(),
            system.len()
        ));
    }
    let clustering = if flags.has("greedy-clustering") {
        comm_greedy_clustering(&problem, system.len(), 1.5).map_err(|e| e.to_string())?
    } else {
        random_region_clustering(&problem, system.len(), &mut rng).map_err(|e| e.to_string())?
    };
    let clustered = ClusteredProblemGraph::new(problem, clustering).map_err(|e| e.to_string())?;
    let algorithm = flags.get("algorithm").unwrap_or("paper");
    if algorithm != "multilevel" {
        for only_multilevel in [
            "direct-threshold",
            "refine-rounds",
            "refine-batch",
            "refine-threads",
        ] {
            if flags.has(only_multilevel) {
                return Err(format!(
                    "--{only_multilevel} requires --algorithm multilevel"
                ));
            }
        }
    }
    if algorithm != "paper" {
        return map_via_registry(algorithm, &clustered, &system, flags, &mut rng);
    }
    let model = if flags.has("serialized") {
        EvaluationModel::Serialized
    } else {
        EvaluationModel::Precedence
    };
    let mapper = Mapper::with_config(mimd_core::MapperConfig {
        model,
        ..mimd_core::MapperConfig::default()
    });
    let result = mapper
        .map(&clustered, &system, &mut rng)
        .map_err(|e| e.to_string())?;
    let reps = flags.num("reps", 32usize)?;
    let (rand_mean, rand_min, rand_max) =
        random_mapping_average(&clustered, &system, model, reps, &mut rng)
            .map_err(|e| e.to_string())?;

    let mut table = Table::new(
        format!("mapping onto {}", system.name()),
        &["metric", "value"],
    );
    table.push_row(vec!["lower bound".into(), result.lower_bound.to_string()]);
    table.push_row(vec![
        "initial assignment total".into(),
        result.initial_total.to_string(),
    ]);
    table.push_row(vec!["final total".into(), result.total_time.to_string()]);
    table.push_row(vec![
        "% over lower bound".into(),
        format!("{:.1}", result.percent_over_lower_bound()),
    ]);
    table.push_row(vec![
        "refinement iterations".into(),
        result.refinement.iterations_used.to_string(),
    ]);
    table.push_row(vec![
        "provably optimal".into(),
        result.is_provably_optimal().to_string(),
    ]);
    table.push_row(vec![
        format!("random mapping mean (x{reps})"),
        format!("{rand_mean:.1} (min {rand_min}, max {rand_max})"),
    ]);
    println!("{}", table.render());
    println!(
        "assignment (cluster -> processor): {:?}",
        result.assignment.sys_of_vec()
    );
    if flags.has("gantt") {
        print_gantt(&clustered, &system, &result.assignment, model)?;
    }
    Ok(())
}

/// Render the schedule of `assignment` as the paper-style horizontal
/// Gantt chart (`mimd map --gantt`, shared by every algorithm path).
fn print_gantt(
    clustered: &ClusteredProblemGraph,
    system: &mimd_topology::SystemGraph,
    assignment: &Assignment,
    model: EvaluationModel,
) -> Result<(), String> {
    let eval =
        evaluate_assignment(clustered, system, assignment, model).map_err(|e| e.to_string())?;
    let mut gantt = Gantt::new("schedule (paper Figs 6/24 style, horizontal)");
    for t in 0..clustered.num_tasks() {
        gantt.push(GanttTask {
            label: (t + 1).to_string(),
            processor: assignment.sys_of(clustered.cluster_of(t)),
            start: eval.schedule.start(t),
            end: eval.schedule.end(t),
        });
    }
    println!("{}", gantt.render(100));
    Ok(())
}

/// The non-paper `mimd map` path: run any registry algorithm (selected
/// with `--algorithm`) on the already-built instance and print the
/// shared metrics. Multilevel accepts `--direct-threshold` and
/// `--refine-rounds`; every algorithm reports precedence-model totals.
fn map_via_registry(
    algorithm: &str,
    clustered: &ClusteredProblemGraph,
    system: &mimd_topology::SystemGraph,
    flags: &Flags,
    rng: &mut StdRng,
) -> Result<(), String> {
    if flags.has("serialized") {
        return Err("--serialized only applies to --algorithm paper".into());
    }
    let opt_num = |name: &str| -> Result<Option<usize>, String> {
        flags
            .get(name)
            .map(|v| v.parse().map_err(|_| format!("bad --{name} '{v}'")))
            .transpose()
    };
    // cmd_map already rejected the multilevel-only flags for every
    // other algorithm.
    let spec = if algorithm == "multilevel" {
        mimd_engine::AlgorithmSpec::Multilevel {
            direct_threshold: opt_num("direct-threshold")?,
            refine_rounds: opt_num("refine-rounds")?,
            refine_batch: opt_num("refine-batch")?,
            refine_threads: opt_num("refine-threads")?,
        }
    } else {
        mimd_engine::AlgorithmSpec::parse(algorithm)?
    };
    let lower_bound = mimd_core::IdealSchedule::derive(clustered).lower_bound();
    let algo = mimd_engine::instantiate(&spec, system.len());
    let outcome = algo
        .run(clustered, system, lower_bound, rng)
        .map_err(|e| e.to_string())?;
    let reps = flags.num("reps", 32usize)?;
    let (rand_mean, rand_min, rand_max) =
        random_mapping_average(clustered, system, EvaluationModel::Precedence, reps, rng)
            .map_err(|e| e.to_string())?;

    let mut table = Table::new(
        format!("{} mapping onto {}", algo.name(), system.name()),
        &["metric", "value"],
    );
    table.push_row(vec!["lower bound".into(), lower_bound.to_string()]);
    table.push_row(vec!["final total".into(), outcome.total.to_string()]);
    table.push_row(vec![
        "% over lower bound".into(),
        format!("{:.1}", 100.0 * outcome.total as f64 / lower_bound as f64),
    ]);
    table.push_row(vec![
        "provably optimal".into(),
        (outcome.total == lower_bound).to_string(),
    ]);
    table.push_row(vec![
        "search effort (evaluations)".into(),
        outcome.evaluations.to_string(),
    ]);
    table.push_row(vec![
        format!("random mapping mean (x{reps})"),
        format!("{rand_mean:.1} (min {rand_min}, max {rand_max})"),
    ]);
    println!("{}", table.render());
    println!(
        "assignment (cluster -> processor): {:?}",
        outcome.assignment.sys_of_vec()
    );
    if flags.has("gantt") {
        print_gantt(
            clustered,
            system,
            &outcome.assignment,
            EvaluationModel::Precedence,
        )?;
    }
    Ok(())
}

/// `mimd trace`: generate a synthetic churn trace (header + events) for
/// `mimd replay` and the online benchmarks.
fn cmd_trace(flags: &Flags) -> Result<(), String> {
    flags.allow_only(&[
        "tasks", "workload", "load", "width", "spec", "events", "regime", "seed", "out",
    ])?;
    let spec_text = flags.get("spec").ok_or("trace needs --spec")?;
    let topology = crate::args::parse_topology(spec_text)?;
    let seed = flags.num("seed", 1991u64)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let system = topology.build(&mut rng).map_err(|e| e.to_string())?;
    let problem = problem_from_flags(flags, &mut rng)?;
    if problem.len() < system.len() {
        return Err(format!(
            "problem has {} tasks but the machine has {} processors; need np >= ns",
            problem.len(),
            system.len()
        ));
    }
    let clustering =
        random_region_clustering(&problem, system.len(), &mut rng).map_err(|e| e.to_string())?;
    let base = ClusteredProblemGraph::new(problem, clustering).map_err(|e| e.to_string())?;
    let events = flags.num("events", 100usize)?;
    let regime =
        mimd_taskgraph::workloads::ChurnRegime::parse(flags.get("regime").unwrap_or("mixed"))?;
    let trace = mimd_taskgraph::workloads::churn_trace(&base, events, regime, &mut rng);
    let header = mimd_online::TraceHeader {
        topology,
        topology_seed: Some(seed),
        snapshot: mimd_online::DynamicWorkload::from_clustered(&base).snapshot(),
    };
    let write = |writer: &mut dyn std::io::Write| {
        mimd_online::write_trace(writer, &header, &trace).map_err(|e| e.to_string())
    };
    match flags.get("out") {
        Some(path) => {
            let mut file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            write(&mut file)?;
        }
        None => write(&mut std::io::stdout().lock())?,
    }
    eprintln!(
        "trace: {} events ({regime:?}) on {} ({} tasks, {} clusters)",
        trace.len(),
        system.name(),
        base.num_tasks(),
        base.num_clusters()
    );
    Ok(())
}

/// `mimd replay`: feed a trace through the incremental remapper,
/// emitting one JSONL record per event.
fn cmd_replay(flags: &Flags) -> Result<(), String> {
    use std::io::Write;
    flags.allow_only(&[
        "trace",
        "seed",
        "migration-penalty",
        "staleness",
        "local-rounds",
        "region-size",
        "scratch",
        "summary",
        "out",
        "profile",
        "profile-json",
        "trace-out",
        "chrome-trace",
    ])?;
    if flags.has("scratch") && flags.has("staleness") {
        return Err(
            "--scratch forces full V-cycles per event and overrides --staleness; \
                    pass only one of them"
                .into(),
        );
    }
    let input = flags.get("trace").ok_or("replay needs --trace")?;
    let (header, events) = if input == "-" {
        mimd_online::read_trace(std::io::stdin().lock())?
    } else {
        let file = std::fs::File::open(input).map_err(|e| format!("{input}: {e}"))?;
        mimd_online::read_trace(std::io::BufReader::new(file))?
    };

    let defaults = mimd_online::OnlineConfig::default();
    let config = mimd_online::OnlineConfig {
        migration_penalty: flags.num("migration-penalty", defaults.migration_penalty)?,
        // --scratch forces a full V-cycle per event (the from-scratch
        // baseline the incremental path is measured against).
        staleness_threshold: if flags.has("scratch") {
            0.0
        } else {
            flags.num("staleness", defaults.staleness_threshold)?
        },
        local_rounds: flags.num("local-rounds", defaults.local_rounds)?,
        region_size: flags.num("region-size", defaults.region_size)?,
        multilevel: defaults.multilevel,
    };

    // Replay through the unified MappingService: topology artifacts
    // come from its shared cache, so replay and any co-resident
    // batch/session traffic share the hierarchy (and its counters).
    let service = mimd_service::MappingService::new(mimd_service::ServiceConfig {
        telemetry: profiling(flags)?,
        journal: journaling(flags)?,
        ..mimd_service::ServiceConfig::default()
    });

    let mut sink: Box<dyn Write> = match flags.get("out") {
        Some(path) => Box::new(std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?),
        None => Box::new(std::io::stdout().lock()),
    };
    let seed = flags.num("seed", 1991u64)?;
    let mut write_error: Option<std::io::Error> = None;
    let summary = service.replay(&header, &events, &config, seed, |record| {
        if write_error.is_none() {
            if let Err(e) = writeln!(sink, "{}", record.to_json_line()) {
                write_error = Some(e);
            }
        }
    })?;
    match write_error {
        Some(e) if e.kind() == std::io::ErrorKind::BrokenPipe => return Ok(()),
        Some(e) => return Err(format!("writing records: {e}")),
        None => {}
    }
    if let Err(e) = sink.flush() {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            return Err(format!("writing records: {e}"));
        }
        return Ok(());
    }

    // Cache counters as the canonical serde CacheStats object, not
    // ad-hoc counter prose — the same shape `Response::Stats` serves.
    let stats = service.cache_stats();
    eprintln!(
        "replay: {} events ({} incremental, {} full, {} errors), \
         {} migrations, mean {:.1}% over lower bound; cache: {}",
        summary.events,
        summary.incremental,
        summary.full_remaps,
        summary.errors,
        summary.total_moves,
        summary.mean_percent_over(),
        serde_json::to_string(&stats).map_err(|e| e.to_string())?,
    );
    if flags.has("summary") {
        let mut table = Table::new("replay summary", &["metric", "value"]);
        table.push_row(vec!["events".into(), summary.events.to_string()]);
        table.push_row(vec!["incremental".into(), summary.incremental.to_string()]);
        table.push_row(vec!["full remaps".into(), summary.full_remaps.to_string()]);
        table.push_row(vec!["errors".into(), summary.errors.to_string()]);
        table.push_row(vec!["migrations".into(), summary.total_moves.to_string()]);
        table.push_row(vec![
            "mean % over lower bound".into(),
            format!("{:.1}", summary.mean_percent_over()),
        ]);
        eprintln!("{}", table.render());
    }
    emit_profile(&service, flags)?;
    emit_journal(&service.journal_snapshot(), flags)?;
    Ok(())
}

/// `mimd serve`: the long-running MappingService loop — one JSONL
/// [`mimd_service::Request`] per stdin line, one JSONL
/// [`mimd_service::Response`] per stdout line, until EOF. Sessions are
/// multiplexed in-process and share topology artifacts with `map_once`
/// traffic through one cache; per-session seeding is deterministic, so
/// a served trace is byte-identical to `mimd replay` on the same trace.
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    flags.allow_only(&[
        "max-sessions",
        "telemetry",
        "slow-ms",
        "stats-interval",
        "listen",
        "shards",
        "queue-depth",
        "trace-out",
        "chrome-trace",
    ])?;
    let slow_ms: Option<u64> = flags
        .get("slow-ms")
        .map(|v| v.parse().map_err(|_| format!("bad --slow-ms '{v}'")))
        .transpose()?;
    let stats_interval: Option<u64> = flags
        .get("stats-interval")
        .map(|v| v.parse().map_err(|_| format!("bad --stats-interval '{v}'")))
        .transpose()?;
    if flags.has("stats-interval") && stats_interval.is_none() {
        return Err("--stats-interval needs a whole number of seconds".into());
    }
    if stats_interval == Some(0) {
        return Err("--stats-interval must be at least 1 second".into());
    }
    if !flags.has("listen") {
        for concurrent_only in ["shards", "queue-depth"] {
            if flags.has(concurrent_only) {
                return Err(format!("--{concurrent_only} needs --listen"));
            }
        }
    } else if slow_ms.is_some() {
        // The slow-request clock wraps the blocking stdin loop; shard
        // workers time nothing, so advertising the flag would lie.
        return Err("--slow-ms applies to the stdin serve loop only, not --listen".into());
    }
    let defaults = mimd_service::ServiceConfig::default();
    let service = mimd_service::MappingService::new(mimd_service::ServiceConfig {
        max_sessions: flags.num("max-sessions", defaults.max_sessions)?,
        // --slow-ms and --stats-interval imply telemetry so the
        // serve.slow_requests / serve.stats_emitted counters land in
        // the stats line the loop prints on exit.
        telemetry: flags.has("telemetry") || slow_ms.is_some() || stats_interval.is_some(),
        journal: journaling(flags)?,
        ..defaults
    });
    if let Some(listen) = flags.get("listen") {
        return serve_listen(flags, service, listen, stats_interval);
    }
    // The periodic stats emitter writes one line to stderr per tick —
    // strictly off the stdout protocol stream, which stays
    // byte-identical with or without the emitter running.
    let started = std::time::Instant::now();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let result = std::thread::scope(|scope| {
        let stop = &stop;
        let service_ref = &service;
        let emitter = stats_interval.map(|secs| {
            scope.spawn(move || {
                let period = std::time::Duration::from_secs(secs);
                let tick = std::time::Duration::from_millis(50);
                let mut next = period;
                loop {
                    while started.elapsed() < next {
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(tick.min(next.saturating_sub(started.elapsed())));
                    }
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        return;
                    }
                    service_ref.note_stats_emitted();
                    eprintln!(
                        "{}",
                        mimd_service::stats_line(&service_ref.stats(), started.elapsed().as_secs())
                    );
                    next += period;
                }
            })
        });
        let result = mimd_service::serve_jsonl_with(
            &service,
            std::io::stdin().lock(),
            std::io::stdout().lock(),
            std::io::stderr(),
            mimd_service::ServeOptions { slow_ms },
        );
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(handle) = emitter {
            let _ = handle.join();
        }
        result
    });
    let summary = match result {
        Ok(summary) => summary,
        // Consumer closed the pipe: conventional clean stop.
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => return Ok(()),
        Err(e) => return Err(format!("serve: {e}")),
    };
    let stats = service.stats();
    eprintln!(
        "serve: {} requests ({} errors, {} slow); {}",
        summary.requests,
        summary.errors,
        summary.slow_requests,
        serde_json::to_string(&stats).map_err(|e| e.to_string())?,
    );
    if flags.has("telemetry") {
        eprint!("{}", mimd_report::render_profile(&stats.telemetry));
    }
    emit_journal(&service.journal_snapshot(), flags)?;
    Ok(())
}

/// `mimd serve --listen`: the concurrent front end. Accepts on a TCP
/// address or Unix socket, shards sessions over workers, and drains
/// gracefully when stdin reaches EOF (the shutdown signal a sidecar
/// can deliver without platform signal handling).
fn serve_listen(
    flags: &Flags,
    service: mimd_service::MappingService,
    listen: &str,
    stats_interval: Option<u64>,
) -> Result<(), String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let addr = mimd_server::ListenAddr::parse(listen)?;
    let shards = flags.num("shards", 4usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let queue_depth = flags.num("queue-depth", 256usize)?;
    if queue_depth == 0 {
        return Err("--queue-depth must be at least 1".into());
    }
    let service = Arc::new(service);
    let server = mimd_server::Server::bind(
        Arc::clone(&service),
        &addr,
        mimd_server::ServerConfig {
            shards,
            queue_depth,
        },
    )
    .map_err(|e| format!("bind {addr}: {e}"))?;
    // The bound address resolves TCP port 0 — clients (and tests)
    // parse this line to know where to connect.
    eprintln!(
        "listening on {} ({shards} shards, queue depth {queue_depth})",
        server.local_display()
    );

    let started = std::time::Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    // Drain trigger: stdin EOF. The watcher stays detached — if the
    // server dies on its own the process exits and takes it along.
    {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            use std::io::Read;
            let mut sink = [0u8; 4096];
            let mut stdin = std::io::stdin().lock();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            stop.store(true, Ordering::Relaxed);
        });
    }
    let emitter = stats_interval.map(|secs| {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let period = std::time::Duration::from_secs(secs);
            let tick = std::time::Duration::from_millis(50);
            let mut next = period;
            loop {
                while started.elapsed() < next {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(tick.min(next.saturating_sub(started.elapsed())));
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                service.note_stats_emitted();
                eprintln!(
                    "{}",
                    mimd_service::stats_line(&service.stats(), started.elapsed().as_secs())
                );
                next += period;
            }
        })
    });

    let result = server.run(Arc::clone(&stop));
    stop.store(true, Ordering::Relaxed);
    if let Some(handle) = emitter {
        let _ = handle.join();
    }
    let summary = result.map_err(|e| format!("serve: {e}"))?;
    let stats = service.stats();
    eprintln!(
        "serve: drained; {} requests ({} rejected, {} malformed) over {} connections; {}",
        summary.requests,
        summary.rejected,
        summary.malformed_lines(),
        summary.connections,
        serde_json::to_string(&stats).map_err(|e| e.to_string())?,
    );
    for conn in summary
        .per_connection
        .iter()
        .filter(|c| c.malformed_lines > 0)
    {
        eprintln!(
            "serve: conn {}: {} malformed of {} requests",
            conn.conn, conn.malformed_lines, conn.requests
        );
    }
    if flags.has("telemetry") {
        eprint!("{}", mimd_report::render_profile(&stats.telemetry));
    }
    emit_journal(&service.journal_snapshot(), flags)?;
    Ok(())
}

/// `mimd loadgen`: synthesize one small trace and drive it through
/// many concurrent sessions against a listening `mimd serve --listen`,
/// reporting sustained requests/sec and tail latency.
fn cmd_loadgen(flags: &Flags) -> Result<(), String> {
    flags.allow_only(&[
        "connect",
        "sessions",
        "connections",
        "events",
        "tasks",
        "spec",
        "regime",
        "seed",
        "rate",
        "json",
    ])?;
    let connect = flags.get("connect").ok_or("loadgen needs --connect")?;
    let addr = mimd_server::ListenAddr::parse(connect)?;
    let sessions = flags.num("sessions", 64usize)?;
    if sessions == 0 {
        return Err("--sessions must be at least 1".into());
    }
    let connections = flags.num("connections", 8usize)?;
    if connections == 0 {
        return Err("--connections must be at least 1".into());
    }
    let rate: Option<f64> = flags
        .get("rate")
        .map(|v| v.parse().map_err(|_| format!("bad --rate '{v}'")))
        .transpose()?;
    if let Some(rate) = rate {
        if rate.is_nan() || rate <= 0.0 {
            return Err("--rate must be a positive opens/sec".into());
        }
    }

    // Every session replays the same synthesized trace with its own
    // seed, so the per-session work is identical and the measured
    // spread is the server's.
    let seed = flags.num("seed", 1991u64)?;
    let topology = crate::args::parse_topology(flags.get("spec").unwrap_or("torus:4x4"))?;
    let mut rng = StdRng::seed_from_u64(seed);
    let system = topology.build(&mut rng).map_err(|e| e.to_string())?;
    let tasks = flags.num("tasks", 64usize)?;
    if tasks < system.len() {
        return Err(format!(
            "--tasks {} on a {}-processor machine; need np >= ns",
            tasks,
            system.len()
        ));
    }
    let gen = LayeredDagGenerator::new(GeneratorConfig {
        tasks,
        ..GeneratorConfig::default()
    })
    .map_err(|e| e.to_string())?;
    let problem = gen.generate(&mut rng);
    let clustering =
        random_region_clustering(&problem, system.len(), &mut rng).map_err(|e| e.to_string())?;
    let base = ClusteredProblemGraph::new(problem, clustering).map_err(|e| e.to_string())?;
    let events = flags.num("events", 6usize)?;
    let regime =
        mimd_taskgraph::workloads::ChurnRegime::parse(flags.get("regime").unwrap_or("mixed"))?;
    let trace = mimd_taskgraph::workloads::churn_trace(&base, events, regime, &mut rng);
    let header = mimd_online::TraceHeader {
        topology,
        topology_seed: Some(seed),
        snapshot: mimd_online::DynamicWorkload::from_clustered(&base).snapshot(),
    };

    let report = mimd_server::run_loadgen(
        &addr,
        &mimd_server::LoadgenConfig {
            sessions,
            connections,
            header,
            events: trace,
            seed,
            rate,
        },
    )
    .map_err(|e| format!("loadgen: {e}"))?;
    eprintln!("{}", report.human_line());
    if flags.has("json") {
        println!(
            "{}",
            serde_json::to_string(&report).map_err(|e| e.to_string())?
        );
    }
    if report.errors > 0 {
        return Err(format!("loadgen: {} error responses", report.errors));
    }
    Ok(())
}

/// `mimd bench`: run a declarative benchmark suite min-of-k through
/// the engine/service entry points, emit a versioned `BenchReport`
/// (stdout or `--out`), append it to the `BENCH_history.jsonl`
/// trajectory, and — with `--compare` — classify every metric against
/// a baseline report, exiting 1 on regression so CI can gate on it.
fn cmd_bench(flags: &Flags) -> Result<(), String> {
    flags.allow_only(&[
        "suite",
        "reps",
        "list",
        "out",
        "history",
        "no-history",
        "compare",
        "with",
        "noise-floor",
        "quality-tolerance",
    ])?;
    for name in ["with", "compare", "out", "history"] {
        if flags.has(name) && flags.get(name).is_none() {
            return Err(format!("--{name} needs a file path"));
        }
    }
    if flags.has("list") {
        let mut table = Table::new(
            "bench suites (mimd bench --suite <name>)",
            &["suite", "reps", "scenario", "kind"],
        );
        for suite in mimd_bench::suites() {
            for scenario in &suite.scenarios {
                table.push_row(vec![
                    suite.name.clone(),
                    suite.reps.to_string(),
                    scenario.name.clone(),
                    scenario.kind_label(),
                ]);
            }
        }
        println!("{}", table.render());
        return Ok(());
    }

    // The current report: --with loads an existing one from disk,
    // otherwise the suite runs here.
    let current = match flags.get("with") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            mimd_bench::BenchReport::from_json(&text)?
        }
        None => {
            let suite = mimd_bench::suite_by_name(flags.get("suite").unwrap_or("quick"))?;
            let reps = flags.num("reps", suite.reps)?;
            if reps == 0 {
                return Err("--reps must be at least 1".into());
            }
            eprintln!(
                "bench: suite '{}' ({} scenarios, min of {reps} reps)",
                suite.name,
                suite.scenarios.len()
            );
            let report = mimd_bench::run_suite(&suite, reps)?.with_environment();

            let json = report.to_json_pretty();
            match flags.get("out") {
                Some("-") => println!("{json}"),
                Some(path) => {
                    std::fs::write(path, json + "\n").map_err(|e| format!("{path}: {e}"))?
                }
                // No --out: the report goes to stdout unless a compare
                // is the point of the run.
                None if flags.get("compare").is_none() => println!("{json}"),
                None => {}
            }
            if !flags.has("no-history") {
                let path = flags.get("history").unwrap_or("BENCH_history.jsonl");
                mimd_bench::append_history(path, &report)?;
                eprintln!("bench: appended to {path}");
            }

            let mut table = Table::new(
                "bench results (min-of-k wall-clock)",
                &["scenario", "kind", "wall", "items/s", "% over LB"],
            );
            for s in &report.scenarios {
                table.push_row(vec![
                    s.name.clone(),
                    s.kind.clone(),
                    format!("{:.2}ms", s.wall_ns as f64 / 1e6),
                    format!("{:.0}", s.items_per_sec),
                    s.quality_percent_over
                        .map(|q| format!("{q:.2}"))
                        .unwrap_or_else(|| "-".into()),
                ]);
            }
            eprintln!("{}", table.render());
            report
        }
    };

    if let Some(path) = flags.get("compare") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let baseline = mimd_bench::BenchReport::from_json(&text)?;
        let defaults = mimd_bench::CompareConfig::default();
        let config = mimd_bench::CompareConfig {
            noise_floor: flags.num("noise-floor", defaults.noise_floor)?,
            quality_tolerance: flags.num("quality-tolerance", defaults.quality_tolerance)?,
            ..defaults
        };
        let comparison = mimd_bench::Comparison::compare(&baseline, &current, &config)?;
        eprintln!("{}", comparison.table().render());
        eprintln!("{}", comparison.verdict_line());
        if comparison.regressions() > 0 {
            // A gate failure is a verdict, not a usage error: exit 1
            // directly instead of bubbling an Err (which would print
            // the usage text and exit 2).
            std::process::exit(1);
        }
    }
    Ok(())
}

fn cmd_algorithms(flags: &Flags) -> Result<(), String> {
    flags.allow_only(&[])?;
    let mut table = Table::new(
        "algorithm registry (mimd map --algorithm, batch/sweep job specs)",
        &["name", "description"],
    );
    for &(name, description) in mimd_engine::algorithm_catalog() {
        table.push_row(vec![name.into(), description.into()]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    flags.allow_only(&[
        "tasks",
        "workload",
        "spec",
        "seed",
        "width",
        "contention",
        "serialize",
    ])?;
    let spec = flags.get("spec").ok_or("simulate needs --spec")?;
    let mut rng = StdRng::seed_from_u64(flags.num("seed", 1991u64)?);
    let system = build_topology(spec, &mut rng)?;
    let problem = problem_from_flags(flags, &mut rng)?;
    let clustering =
        random_region_clustering(&problem, system.len(), &mut rng).map_err(|e| e.to_string())?;
    let clustered = ClusteredProblemGraph::new(problem, clustering).map_err(|e| e.to_string())?;
    let result = Mapper::new()
        .map(&clustered, &system, &mut rng)
        .map_err(|e| e.to_string())?;

    let config = SimConfig {
        serialize_processors: flags.has("serialize"),
        link_contention: flags.has("contention"),
    };
    let report =
        simulate(&clustered, &system, &result.assignment, config).map_err(|e| e.to_string())?;
    println!(
        "simulated {} on {}:",
        if config == SimConfig::paper() {
            "(paper model)"
        } else {
            "(extended model)"
        },
        system.name()
    );
    println!("  makespan       : {}", report.total);
    println!("  analytic total : {} (paper model)", result.total_time);
    println!("  messages       : {}", report.messages_sent);
    println!("  mean hops      : {:.2}", report.mean_hops());
    println!("  link wait total: {}", report.link_wait_total);
    if config == SimConfig::paper() {
        assert_eq!(report.total, result.total_time);
        println!("  (DES reproduces the analytic model exactly)");
    }
    Ok(())
}

/// `true` iff a profiling flag asked for telemetry collection; rejects
/// a valueless `--profile-json` up front, before any work runs.
fn profiling(flags: &Flags) -> Result<bool, String> {
    if flags.has("profile-json") && flags.get("profile-json").is_none() {
        return Err("--profile-json needs a file path ('-' for stderr)".into());
    }
    Ok(flags.has("profile") || flags.has("profile-json"))
}

/// Shared tail of `--profile` / `--profile-json`: print the phase
/// breakdown to stderr and/or dump the raw snapshot as JSON (stderr
/// with `-`). Stdout stays reserved for the command's record stream.
fn emit_profile(service: &mimd_service::MappingService, flags: &Flags) -> Result<(), String> {
    let snapshot = service.recorder().snapshot();
    if flags.has("profile") {
        eprint!("{}", mimd_report::render_profile(&snapshot));
    }
    if let Some(path) = flags.get("profile-json") {
        let json = serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?;
        if path == "-" {
            eprintln!("{json}");
        } else {
            std::fs::write(path, json + "\n").map_err(|e| format!("{path}: {e}"))?;
        }
    }
    Ok(())
}

/// `true` iff a journal-export flag asked for event capture; rejects a
/// valueless `--trace-out`/`--chrome-trace` up front, before any work
/// runs.
fn journaling(flags: &Flags) -> Result<bool, String> {
    for name in ["trace-out", "chrome-trace"] {
        if flags.has(name) && flags.get(name).is_none() {
            return Err(format!("--{name} needs a file path"));
        }
    }
    Ok(flags.has("trace-out") || flags.has("chrome-trace"))
}

/// Shared tail of `--trace-out` / `--chrome-trace`: write the frozen
/// journal ring as JSONL events and/or a Chrome `trace_event` file.
/// Exports always go to files — stdout stays reserved for the
/// command's record stream, which is byte-identical with or without
/// the journal enabled.
fn emit_journal(snapshot: &JournalSnapshot, flags: &Flags) -> Result<(), String> {
    if let Some(path) = flags.get("trace-out") {
        std::fs::write(path, snapshot.to_jsonl()).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = flags.get("chrome-trace") {
        std::fs::write(path, snapshot.to_chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

/// `mimd explain`: run one job with the gain ledger (and optionally the
/// event journal) enabled, then attribute the finished mapping —
/// per-processor loads, per-link routed traffic, the hop histogram,
/// the schedule critical path and the per-pass refinement gain ledger.
/// The JSON report goes to stdout; the human tables go to stderr, so
/// the report stays machine-consumable.
fn cmd_explain(flags: &Flags) -> Result<(), String> {
    flags.allow_only(&[
        "tasks",
        "workload",
        "spec",
        "seed",
        "algorithm",
        "clustering",
        "trace-out",
        "chrome-trace",
    ])?;
    let spec_text = flags.get("spec").ok_or("explain needs --spec")?;
    let workload = match flags.get("workload") {
        Some(spec) => mimd_engine::WorkloadSpec::parse(spec)?,
        None => {
            let tasks = flags.num("tasks", 96usize)?;
            mimd_engine::WorkloadSpec::parse(&format!("tasks:{tasks}"))?
        }
    };
    let clustering = flags
        .get("clustering")
        .map(mimd_engine::ClusteringSpec::parse)
        .transpose()?;
    let job = mimd_engine::JobSpec {
        id: None,
        workload,
        clustering,
        topology: crate::args::parse_topology(spec_text)?,
        topology_seed: None,
        algorithm: mimd_engine::AlgorithmSpec::parse(flags.get("algorithm").unwrap_or("paper"))?,
        seed: flags.num("seed", 1991u64)?,
    };

    // The ledger is the whole point of explain; the journal only rides
    // along when an export was requested.
    let mut recorder = Recorder::disabled().with_ledger(GainLedger::enabled());
    if journaling(flags)? {
        recorder = recorder.with_journal(Journal::enabled());
    }
    let cache = mimd_engine::TopologyCache::new();
    let result = mimd_engine::execute_job_recorded(&job, 0, &cache, &recorder);
    if let Some(message) = &result.error {
        return Err(message.clone());
    }

    // Rebuild the instance the engine mapped — same seed, same
    // derivation order as the engine's own execution path — so the
    // report attributes the assignment against the exact graph it was
    // computed for.
    let artifacts = cache
        .get_or_build(&job.topology, job.topology_seed())
        .map_err(|e| format!("topology: {e}"))?;
    let system = &artifacts.system;
    let mut rng = StdRng::seed_from_u64(job.seed);
    let problem = job
        .workload
        .build(&mut rng)
        .map_err(|e| format!("workload: {e}"))?;
    let clustering = job
        .clustering()
        .build(&problem, system.len(), &mut rng)
        .map_err(|e| format!("clustering: {e}"))?;
    let graph = ClusteredProblemGraph::new(problem, clustering).map_err(|e| e.to_string())?;
    let assignment =
        Assignment::from_sys_of(result.assignment.clone()).map_err(|e| e.to_string())?;
    let routing = mimd_sim::RoutingTable::new(system);
    let report = mimd_sim::ExplainReport::compute(
        &graph,
        system,
        &routing,
        &assignment,
        EvaluationModel::Precedence,
        recorder.ledger().snapshot(),
    )
    .map_err(|e| e.to_string())?;
    report
        .validate()
        .map_err(|e| format!("internal: inconsistent explain report: {e}"))?;

    eprint!("{}", mimd_report::render_explain(&report));
    println!(
        "{}",
        serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
    );
    emit_journal(&recorder.journal().snapshot(), flags)?;
    Ok(())
}

/// Shared tail of `batch` and `sweep`, a thin client of the unified
/// [`mimd_service::MappingService`]: run the jobs, stream JSONL
/// results (to stdout or `--out`), and optionally print the aggregate
/// summary table plus cache statistics. Jobs come in as a lazy
/// iterator so large stdin batches are never fully buffered; an input
/// parse error stops intake (already-emitted results stand) and is
/// reported after the run.
fn run_jobs_and_emit(
    jobs: impl IntoIterator<Item = Result<mimd_engine::JobSpec, String>>,
    flags: &Flags,
    what: &str,
) -> Result<(), String> {
    use std::io::Write;

    let threads = flags.num("threads", 0usize)?;
    let service = mimd_service::MappingService::new(mimd_service::ServiceConfig {
        engine: mimd_engine::EngineConfig {
            threads,
            ..mimd_engine::EngineConfig::default()
        },
        telemetry: profiling(flags)?,
        journal: journaling(flags)?,
        ..mimd_service::ServiceConfig::default()
    });

    let mut sink: Box<dyn Write> = match flags.get("out") {
        Some(path) => Box::new(std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?),
        None => Box::new(std::io::stdout().lock()),
    };

    let mut input_error: Option<String> = None;
    let jobs = jobs.into_iter().map_while(|job| match job {
        Ok(job) => Some(job),
        Err(e) => {
            input_error = Some(e);
            None
        }
    });

    let mut summary = mimd_report::BatchSummary::new();
    let mut failures = 0usize;
    let mut write_error: Option<std::io::Error> = None;
    let cancel = service.cancel_token();
    let total = service.run_stream(jobs, |result| {
        if result.error.is_some() {
            failures += 1;
            summary.add_error(&result.algorithm, &result.topology);
        } else {
            summary.add(
                &result.algorithm,
                &result.topology,
                result.percent_over_lower_bound,
                result.optimal,
            );
        }
        if write_error.is_none() {
            if let Err(e) = mimd_engine::write_result(&mut sink, &result) {
                // Stop computing jobs nobody will read.
                cancel.cancel();
                write_error = Some(e);
            }
        }
    });
    match write_error {
        // Consumer closed the pipe (e.g. `mimd batch ... | head`):
        // conventional clean stop, like any line-oriented unix tool.
        Some(e) if e.kind() == std::io::ErrorKind::BrokenPipe => return Ok(()),
        Some(e) => return Err(format!("writing results: {e}")),
        None => {}
    }
    if let Err(e) = sink.flush() {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            return Err(format!("writing results: {e}"));
        }
        return Ok(());
    }

    let stats = service.cache_stats();
    eprintln!(
        "{what}: {total} jobs ({failures} failed); topology cache: {}",
        serde_json::to_string(&stats).map_err(|e| e.to_string())?
    );
    if flags.has("summary") {
        eprintln!(
            "{}",
            summary.render_table(format!("{what} summary")).render()
        );
    }
    emit_profile(&service, flags)?;
    emit_journal(&service.journal_snapshot(), flags)?;
    match input_error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn cmd_batch(input: &str, flags: &Flags) -> Result<(), String> {
    flags.allow_only(&[
        "threads",
        "summary",
        "out",
        "profile",
        "profile-json",
        "trace-out",
        "chrome-trace",
    ])?;
    if input == "-" {
        run_jobs_and_emit(
            mimd_engine::job_lines(std::io::stdin().lock()),
            flags,
            "batch",
        )
    } else {
        let file = std::fs::File::open(input).map_err(|e| format!("{input}: {e}"))?;
        run_jobs_and_emit(
            mimd_engine::job_lines(std::io::BufReader::new(file)),
            flags,
            "batch",
        )
    }
}

fn cmd_sweep(flags: &Flags) -> Result<(), String> {
    flags.allow_only(&[
        "workloads",
        "specs",
        "algos",
        "seeds",
        "clustering",
        "threads",
        "summary",
        "out",
        "profile",
        "profile-json",
        "trace-out",
        "chrome-trace",
    ])?;
    let parse_list = |name: &str| -> Result<Vec<String>, String> {
        let raw = flags
            .get(name)
            .ok_or_else(|| format!("sweep needs --{name}"))?;
        Ok(raw.split(',').map(str::to_string).collect())
    };
    let workloads = parse_list("workloads")?
        .iter()
        .map(|s| mimd_engine::WorkloadSpec::parse(s))
        .collect::<Result<Vec<_>, _>>()?;
    let topologies = parse_list("specs")?
        .iter()
        .map(|s| crate::args::parse_topology(s))
        .collect::<Result<Vec<_>, _>>()?;
    let algorithms = match flags.get("algos") {
        Some(raw) => raw
            .split(',')
            .map(mimd_engine::AlgorithmSpec::parse)
            .collect::<Result<Vec<_>, _>>()?,
        None => vec![mimd_engine::AlgorithmSpec::parse("paper")?],
    };
    let seed_count = flags.num("seeds", 1u64)?;
    if seed_count == 0 {
        return Err("--seeds must be >= 1".into());
    }
    let seeds: Vec<u64> = (0..seed_count).collect();
    let clustering = flags
        .get("clustering")
        .map(mimd_engine::ClusteringSpec::parse)
        .transpose()?;
    let jobs = mimd_engine::sweep_jobs(&workloads, &topologies, &algorithms, &seeds, clustering);
    run_jobs_and_emit(jobs.into_iter().map(Ok), flags, "sweep")
}

fn cmd_paper(flags: &Flags) -> Result<(), String> {
    flags.allow_only(&[])?;
    let g = paper::worked_example();
    let system = mimd_topology::ring(4).map_err(|e| e.to_string())?;
    let ideal = mimd_core::IdealSchedule::derive(&g);
    println!("worked example (Figs 2-6, 18-24): 11 tasks, 4 clusters, ring(4)");
    println!("  lower bound     : {}", ideal.lower_bound());
    println!(
        "  latest tasks    : {:?}",
        ideal
            .latest_tasks()
            .iter()
            .map(|&t| t + 1)
            .collect::<Vec<_>>()
    );
    let crit =
        mimd_core::CriticalAnalysis::analyze(&g, &ideal, mimd_core::CriticalityMode::PaperExact);
    println!(
        "  critical edges  : {:?}",
        crit.critical_edges()
            .iter()
            .map(|&(u, v, w)| format!("({},{})={w}", u + 1, v + 1))
            .collect::<Vec<_>>()
    );
    let fig23 = Assignment::from_sys_of(paper::WORKED_OPTIMAL_ASSIGNMENT.to_vec())
        .map_err(|e| e.to_string())?;
    let eval = evaluate_assignment(&g, &system, &fig23, EvaluationModel::Precedence)
        .map_err(|e| e.to_string())?;
    println!(
        "  Fig 23 mapping  : {:?} -> total {} (= lower bound)",
        paper::WORKED_OPTIMAL_ASSIGNMENT,
        eval.total()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<(), String> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn generate_and_topology_run() {
        run(&["generate", "--tasks", "30", "--seed", "1"]).unwrap();
        run(&["generate", "--tasks", "12", "--json"]).unwrap();
        run(&["generate", "--tasks", "10", "--dot"]).unwrap();
        run(&["topology", "--spec", "hypercube:3"]).unwrap();
        run(&["topology", "--spec", "mesh:2x3", "--dot"]).unwrap();
    }

    #[test]
    fn map_and_simulate_run() {
        run(&[
            "map", "--tasks", "40", "--spec", "ring:5", "--seed", "2", "--reps", "4",
        ])
        .unwrap();
        run(&[
            "map",
            "--workload",
            "ge:8",
            "--spec",
            "hypercube:3",
            "--reps",
            "4",
        ])
        .unwrap();
        run(&[
            "map",
            "--workload",
            "fft:3",
            "--spec",
            "ring:4",
            "--reps",
            "2",
            "--gantt",
        ])
        .unwrap();
        run(&[
            "simulate",
            "--tasks",
            "40",
            "--spec",
            "mesh:2x3",
            "--contention",
        ])
        .unwrap();
        run(&["paper"]).unwrap();
    }

    #[test]
    fn map_with_registry_algorithms_runs() {
        run(&[
            "map",
            "--tasks",
            "80",
            "--spec",
            "mesh:6x6",
            "--algorithm",
            "multilevel",
            "--direct-threshold",
            "8",
            "--refine-rounds",
            "4",
            "--reps",
            "2",
            "--seed",
            "3",
        ])
        .unwrap();
        run(&[
            "map",
            "--workload",
            "fft:3",
            "--spec",
            "fattree:3x3",
            "--algorithm",
            "random",
            "--reps",
            "2",
        ])
        .unwrap();
        run(&[
            "map",
            "--tasks",
            "40",
            "--spec",
            "clusters:4x4",
            "--reps",
            "2",
            "--seed",
            "1",
        ])
        .unwrap();
        // Misuse is rejected.
        assert!(run(&[
            "map",
            "--tasks",
            "40",
            "--spec",
            "ring:8",
            "--algorithm",
            "bogus"
        ])
        .is_err());
        assert!(run(&[
            "map",
            "--tasks",
            "40",
            "--spec",
            "ring:8",
            "--direct-threshold",
            "4"
        ])
        .is_err());
        assert!(run(&[
            "map",
            "--tasks",
            "40",
            "--spec",
            "ring:8",
            "--algorithm",
            "random",
            "--refine-rounds",
            "4"
        ])
        .is_err());
        assert!(run(&[
            "map",
            "--tasks",
            "40",
            "--spec",
            "ring:8",
            "--algorithm",
            "multilevel",
            "--serialized"
        ])
        .is_err());
    }

    #[test]
    fn algorithms_lists_the_registry() {
        run(&["algorithms"]).unwrap();
        assert!(run(&["algorithms", "--verbose"]).is_err());
    }

    #[test]
    fn bench_lists_suites_and_rejects_misuse() {
        run(&["bench", "--list"]).unwrap();
        // Every validation error below fires before any scenario runs.
        assert!(run(&["bench", "--bogus"]).is_err());
        assert!(run(&["bench", "--suite", "nope"]).is_err());
        assert!(run(&["bench", "--reps", "0"]).is_err());
        assert!(run(&["bench", "--with", "/nonexistent/bench-report.json"]).is_err());
        assert!(run(&["bench", "--with"]).is_err());
    }

    #[test]
    fn serve_stats_interval_is_validated() {
        // Each misuse is rejected before the serve loop touches stdin.
        assert!(run(&["serve", "--stats-interval"]).is_err());
        assert!(run(&["serve", "--stats-interval", "0"]).is_err());
        assert!(run(&["serve", "--stats-interval", "two"]).is_err());
    }

    #[test]
    fn serve_listen_flags_are_validated() {
        // Concurrency knobs make no sense on the stdin loop…
        assert!(run(&["serve", "--shards", "4"]).is_err());
        assert!(run(&["serve", "--queue-depth", "64"]).is_err());
        // …and each misuse below is rejected before anything binds.
        assert!(run(&["serve", "--listen", "not-an-address"]).is_err());
        assert!(run(&["serve", "--listen", "127.0.0.1:0", "--shards", "0"]).is_err());
        assert!(run(&["serve", "--listen", "127.0.0.1:0", "--queue-depth", "0"]).is_err());
        assert!(run(&["serve", "--listen", "127.0.0.1:0", "--slow-ms", "5"]).is_err());
    }

    #[test]
    fn loadgen_flags_are_validated() {
        assert!(run(&["loadgen"]).is_err()); // needs --connect
        assert!(run(&["loadgen", "--connect", "not-an-address"]).is_err());
        assert!(run(&["loadgen", "--connect", "127.0.0.1:1", "--sessions", "0"]).is_err());
        assert!(run(&["loadgen", "--connect", "127.0.0.1:1", "--connections", "0"]).is_err());
        assert!(run(&["loadgen", "--connect", "127.0.0.1:1", "--rate", "0"]).is_err());
        assert!(run(&["loadgen", "--connect", "127.0.0.1:1", "--rate", "fast"]).is_err());
        assert!(run(&["loadgen", "--connect", "127.0.0.1:1", "--bogus"]).is_err());
        // A 4x4 torus needs at least 16 tasks.
        assert!(run(&["loadgen", "--connect", "127.0.0.1:1", "--tasks", "8"]).is_err());
    }

    #[test]
    fn batch_and_sweep_run() {
        let dir = std::env::temp_dir().join("mimd-cli-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let jobs = dir.join("jobs.jsonl");
        let out = dir.join("results.jsonl");
        std::fs::write(
            &jobs,
            "# demo batch\n\
             {\"workload\":{\"kind\":\"fft\",\"log2n\":3},\
              \"topology\":{\"kind\":\"ring\",\"n\":4},\
              \"algorithm\":{\"kind\":\"paper\"},\"seed\":1}\n\
             {\"workload\":{\"kind\":\"pipeline\",\"stages\":2,\"tasks\":4},\
              \"topology\":{\"kind\":\"ring\",\"n\":4},\
              \"algorithm\":{\"kind\":\"random\",\"k\":4},\"seed\":2}\n",
        )
        .unwrap();
        run(&[
            "batch",
            jobs.to_str().unwrap(),
            "--threads",
            "2",
            "--summary",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let result = mimd_engine::JobResult::from_json_line(line).unwrap();
            assert!(result.error.is_none(), "{:?}", result.error);
        }

        let out2 = dir.join("sweep.jsonl");
        run(&[
            "sweep",
            "--workloads",
            "fft:3,ge:6",
            "--specs",
            "ring:4",
            "--algos",
            "paper,random",
            "--seeds",
            "2",
            "--out",
            out2.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&out2).unwrap();
        assert_eq!(text.lines().count(), 2 * 2 * 2);

        // --profile/--profile-json collect telemetry without touching
        // the result stream.
        let out3 = dir.join("profiled.jsonl");
        let prof = dir.join("profile.json");
        run(&[
            "batch",
            jobs.to_str().unwrap(),
            "--out",
            out3.to_str().unwrap(),
            "--profile",
            "--profile-json",
            prof.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&out3).unwrap().lines().count(),
            2,
            "profiling leaves the JSONL stream intact"
        );
        let profile = std::fs::read_to_string(&prof).unwrap();
        assert!(profile.contains("engine.jobs"), "{profile}");
        assert!(profile.contains("engine.queue_wait"), "{profile}");
        // A valueless --profile-json is rejected before any work runs.
        assert!(run(&["batch", jobs.to_str().unwrap(), "--profile-json"]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_and_replay_roundtrip() {
        let dir = std::env::temp_dir().join("mimd-cli-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        let records = dir.join("records.jsonl");
        run(&[
            "trace",
            "--tasks",
            "96",
            "--spec",
            "torus:6x6",
            "--events",
            "25",
            "--regime",
            "mixed",
            "--seed",
            "5",
            "--out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        assert_eq!(text.lines().count(), 26, "header + 25 events");

        run(&[
            "replay",
            "--trace",
            trace.to_str().unwrap(),
            "--seed",
            "5",
            "--summary",
            "--out",
            records.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&records).unwrap();
        assert_eq!(text.lines().count(), 26, "init + 25 events");
        let mut incremental = 0;
        for line in text.lines() {
            let record = mimd_online::ReplayRecord::from_json_line(line).unwrap();
            assert!(record.error.is_none(), "{:?}", record.error);
            assert!(record.total_time >= record.lower_bound);
            incremental += usize::from(record.action == "incremental");
        }
        assert!(incremental > 0, "expected incremental events");

        // --scratch forces full V-cycles everywhere.
        let scratch = dir.join("scratch.jsonl");
        run(&[
            "replay",
            "--trace",
            trace.to_str().unwrap(),
            "--seed",
            "5",
            "--scratch",
            "--out",
            scratch.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&scratch).unwrap();
        for line in text.lines() {
            let record = mimd_online::ReplayRecord::from_json_line(line).unwrap();
            assert_eq!(record.action, "full");
        }

        // --profile records telemetry without changing a single record
        // byte: the profiled run's output matches the plain run's.
        let profiled = dir.join("profiled.jsonl");
        let prof = dir.join("profile.json");
        run(&[
            "replay",
            "--trace",
            trace.to_str().unwrap(),
            "--seed",
            "5",
            "--out",
            profiled.to_str().unwrap(),
            "--profile",
            "--profile-json",
            prof.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&profiled).unwrap(),
            std::fs::read_to_string(&records).unwrap(),
            "telemetry never changes replay output"
        );
        let profile = std::fs::read_to_string(&prof).unwrap();
        assert!(profile.contains("\"online.events\": 25"), "{profile}");
        assert!(profile.contains("online.region_refine"), "{profile}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_runs_and_exports_journals() {
        let dir = std::env::temp_dir().join("mimd-cli-explain-test");
        std::fs::create_dir_all(&dir).unwrap();
        run(&[
            "explain",
            "--tasks",
            "64",
            "--spec",
            "torus:4x4",
            "--seed",
            "3",
        ])
        .unwrap();
        run(&[
            "explain",
            "--workload",
            "fft:4",
            "--spec",
            "hypercube:3",
            "--algorithm",
            "multilevel",
        ])
        .unwrap();
        let events = dir.join("events.jsonl");
        let chrome = dir.join("chrome.json");
        run(&[
            "explain",
            "--tasks",
            "48",
            "--spec",
            "ring:6",
            "--trace-out",
            events.to_str().unwrap(),
            "--chrome-trace",
            chrome.to_str().unwrap(),
        ])
        .unwrap();
        let jsonl = std::fs::read_to_string(&events).unwrap();
        assert!(!jsonl.trim().is_empty(), "journal export has events");
        for line in jsonl.lines() {
            let event: mimd_telemetry::Event = serde_json::from_str(line).unwrap();
            assert!(!event.name.is_empty());
        }
        let trace = std::fs::read_to_string(&chrome).unwrap();
        let parsed = serde_json::parse_value(&trace).unwrap();
        assert!(trace.contains("traceEvents"), "{parsed:?}");
        // Misuse is rejected.
        assert!(
            run(&["explain", "--tasks", "40"]).is_err(),
            "missing --spec"
        );
        assert!(
            run(&[
                "explain",
                "--tasks",
                "40",
                "--spec",
                "ring:4",
                "--trace-out"
            ])
            .is_err(),
            "valueless --trace-out"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_stdout_is_byte_identical_with_trace_out() {
        let dir = std::env::temp_dir().join("mimd-cli-traceout-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        run(&[
            "trace",
            "--tasks",
            "64",
            "--spec",
            "mesh:4x4",
            "--events",
            "12",
            "--seed",
            "9",
            "--out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        let plain = dir.join("plain.jsonl");
        run(&[
            "replay",
            "--trace",
            trace.to_str().unwrap(),
            "--seed",
            "9",
            "--out",
            plain.to_str().unwrap(),
        ])
        .unwrap();
        let journaled = dir.join("journaled.jsonl");
        let events = dir.join("events.jsonl");
        run(&[
            "replay",
            "--trace",
            trace.to_str().unwrap(),
            "--seed",
            "9",
            "--out",
            journaled.to_str().unwrap(),
            "--trace-out",
            events.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&plain).unwrap(),
            std::fs::read_to_string(&journaled).unwrap(),
            "the journal never changes replay output"
        );
        assert!(!std::fs::read_to_string(&events).unwrap().trim().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_and_replay_errors() {
        assert!(run(&["trace", "--tasks", "40"]).is_err(), "missing --spec");
        assert!(
            run(&["trace", "--tasks", "4", "--spec", "ring:8"]).is_err(),
            "np < ns"
        );
        assert!(run(&["trace", "--tasks", "40", "--spec", "ring:8", "--regime", "storm"]).is_err());
        assert!(run(&["replay"]).is_err(), "missing --trace");
        assert!(run(&["replay", "--trace", "/nonexistent/t.jsonl"]).is_err());
        assert!(
            run(&[
                "replay",
                "--trace",
                "t.jsonl",
                "--scratch",
                "--staleness",
                "0.5"
            ])
            .is_err(),
            "--scratch conflicts with --staleness"
        );
    }

    #[test]
    fn batch_and_sweep_errors() {
        assert!(run(&["batch"]).is_err(), "missing input");
        assert!(run(&["batch", "/nonexistent/x.jsonl"]).is_err());
        assert!(
            run(&["sweep", "--specs", "ring:4"]).is_err(),
            "missing workloads"
        );
        assert!(run(&[
            "sweep",
            "--workloads",
            "fft:3",
            "--specs",
            "ring:4",
            "--seeds",
            "0"
        ])
        .is_err());
        assert!(run(&["sweep", "--workloads", "wat:3", "--specs", "ring:4"]).is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&[]).is_err());
        assert!(run(&["bogus"]).is_err());
        assert!(run(&["map", "--tasks", "40"]).is_err(), "missing --spec");
        assert!(
            run(&["map", "--tasks", "4", "--spec", "ring:8"]).is_err(),
            "np < ns"
        );
        assert!(run(&["topology", "--spec", "nope:1"]).is_err());
        assert!(run(&["generate", "--frobnicate"]).is_err());
        // Flag validation fails before `serve` ever touches stdin.
        assert!(run(&["serve", "--frobnicate"]).is_err());
    }
}

//! Tiny flag parser and the `--spec` / `--workload` mini-languages.

use rand::Rng;

use mimd_graph::error::GraphError;
use mimd_taskgraph::{workloads, ProblemGraph};
use mimd_topology::{SystemGraph, TopologySpec};

/// Parsed `key -> value` flags (`--flag value` or boolean `--flag`).
#[derive(Debug, Default)]
pub struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    /// Parse everything after the subcommand. A flag is boolean when the
    /// next token is another flag (or the end).
    pub fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("expected a --flag, found '{arg}'"));
            };
            let value = match args.get(i + 1) {
                Some(next) if !next.starts_with("--") => {
                    i += 1;
                    Some(next.clone())
                }
                _ => None,
            };
            pairs.push((name.to_string(), value));
            i += 1;
        }
        Ok(Flags { pairs })
    }

    /// String value of `name`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// `true` iff `--name` appeared (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    /// Parse a numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{name} '{v}'")),
        }
    }

    /// Reject unknown flags (catches typos early).
    pub fn allow_only(&self, allowed: &[&str]) -> Result<(), String> {
        for (n, _) in &self.pairs {
            if !allowed.contains(&n.as_str()) {
                return Err(format!("unknown flag --{n}"));
            }
        }
        Ok(())
    }
}

/// Parse the `--spec` mini-language into a [`TopologySpec`]:
/// `hypercube:3`, `mesh:3x4`, `torus:3x4`, `ring:8`, `chain:8`,
/// `star:8`, `tree:15`, `complete:8`, `fattree:4x4` (levels x arity),
/// `clusters:8x32` (groups x group size), `random:16@0.1`.
pub fn parse_topology(spec: &str) -> Result<TopologySpec, String> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or("spec must look like 'kind:params'")?;
    let bad = |what: &str| format!("bad {what} in spec '{spec}'");
    match kind {
        "hypercube" => Ok(TopologySpec::Hypercube {
            dim: rest.parse().map_err(|_| bad("dimension"))?,
        }),
        "mesh" | "torus" => {
            let (r, c) = rest.split_once('x').ok_or_else(|| bad("rows x cols"))?;
            let rows = r.parse().map_err(|_| bad("rows"))?;
            let cols = c.parse().map_err(|_| bad("cols"))?;
            Ok(if kind == "mesh" {
                TopologySpec::Mesh { rows, cols }
            } else {
                TopologySpec::Torus { rows, cols }
            })
        }
        "ring" => Ok(TopologySpec::Ring {
            n: rest.parse().map_err(|_| bad("n"))?,
        }),
        "chain" => Ok(TopologySpec::Chain {
            n: rest.parse().map_err(|_| bad("n"))?,
        }),
        "star" => Ok(TopologySpec::Star {
            n: rest.parse().map_err(|_| bad("n"))?,
        }),
        "tree" => Ok(TopologySpec::BinaryTree {
            n: rest.parse().map_err(|_| bad("n"))?,
        }),
        "complete" => Ok(TopologySpec::Complete {
            n: rest.parse().map_err(|_| bad("n"))?,
        }),
        "fattree" => {
            let (l, a) = rest.split_once('x').ok_or_else(|| bad("levels x arity"))?;
            Ok(TopologySpec::FatTree {
                levels: l.parse().map_err(|_| bad("levels"))?,
                arity: a.parse().map_err(|_| bad("arity"))?,
            })
        }
        "clusters" => {
            let (g, s) = rest
                .split_once('x')
                .ok_or_else(|| bad("groups x group_size"))?;
            Ok(TopologySpec::ClusteredComplete {
                groups: g.parse().map_err(|_| bad("groups"))?,
                group_size: s.parse().map_err(|_| bad("group_size"))?,
            })
        }
        "random" => {
            let (n, p) = rest.split_once('@').ok_or_else(|| bad("n@p"))?;
            Ok(TopologySpec::Random {
                n: n.parse().map_err(|_| bad("n"))?,
                p: p.parse().map_err(|_| bad("p"))?,
            })
        }
        other => Err(format!("unknown topology kind '{other}'")),
    }
}

/// Build a [`SystemGraph`] from a spec string.
pub fn build_topology(spec: &str, rng: &mut impl Rng) -> Result<SystemGraph, String> {
    parse_topology(spec)?
        .build(rng)
        .map_err(|e: GraphError| e.to_string())
}

/// Parse the `--workload` mini-language: `ge:12` (Gaussian elimination),
/// `stencil:16x8`, `fft:5`, `dnc:4` (divide & conquer), `pipe:4x16`.
pub fn parse_workload(spec: &str) -> Result<ProblemGraph, String> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or("workload must look like 'kind:params'")?;
    let err = |e: GraphError| e.to_string();
    let bad = |what: &str| format!("bad {what} in workload '{spec}'");
    match kind {
        "ge" => {
            let n = rest.parse().map_err(|_| bad("n"))?;
            workloads::gaussian_elimination(n, 3, 5, 2).map_err(err)
        }
        "stencil" => {
            let (w, s) = rest.split_once('x').ok_or_else(|| bad("width x steps"))?;
            workloads::stencil_1d(
                w.parse().map_err(|_| bad("width"))?,
                s.parse().map_err(|_| bad("steps"))?,
                5,
                2,
            )
            .map_err(err)
        }
        "fft" => {
            workloads::fft_butterfly(rest.parse().map_err(|_| bad("log2n"))?, 3, 2).map_err(err)
        }
        "dnc" => workloads::divide_and_conquer(rest.parse().map_err(|_| bad("depth"))?, 1, 6, 2, 2)
            .map_err(err),
        "pipe" => {
            let (s, t) = rest.split_once('x').ok_or_else(|| bad("stages x tasks"))?;
            workloads::pipeline(
                s.parse().map_err(|_| bad("stages"))?,
                t.parse().map_err(|_| bad("tasks"))?,
                4,
                2,
            )
            .map_err(err)
        }
        other => Err(format!("unknown workload kind '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        Flags::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn flag_parsing() {
        let f = flags(&["--tasks", "96", "--dot", "--seed", "7"]);
        assert_eq!(f.get("tasks"), Some("96"));
        assert!(f.has("dot"));
        assert!(!f.has("json"));
        assert_eq!(f.num("seed", 0u64).unwrap(), 7);
        assert_eq!(f.num("reps", 32usize).unwrap(), 32);
        assert!(f.num::<u64>("tasks", 0).is_ok());
        assert!(f.allow_only(&["tasks", "dot", "seed"]).is_ok());
        assert!(f.allow_only(&["tasks"]).is_err());
    }

    #[test]
    fn flag_errors() {
        let bad = Flags::parse(&["oops".to_string()]);
        assert!(bad.is_err());
        let f = flags(&["--seed", "xyz"]);
        assert!(f.num::<u64>("seed", 0).is_err());
    }

    #[test]
    fn topology_specs() {
        assert_eq!(
            parse_topology("hypercube:3").unwrap(),
            TopologySpec::Hypercube { dim: 3 }
        );
        assert_eq!(
            parse_topology("mesh:3x4").unwrap(),
            TopologySpec::Mesh { rows: 3, cols: 4 }
        );
        assert_eq!(
            parse_topology("ring:8").unwrap(),
            TopologySpec::Ring { n: 8 }
        );
        assert_eq!(
            parse_topology("random:16@0.1").unwrap(),
            TopologySpec::Random { n: 16, p: 0.1 }
        );
        assert_eq!(
            parse_topology("fattree:4x4").unwrap(),
            TopologySpec::FatTree {
                levels: 4,
                arity: 4
            }
        );
        assert_eq!(
            parse_topology("clusters:8x32").unwrap(),
            TopologySpec::ClusteredComplete {
                groups: 8,
                group_size: 32
            }
        );
        assert!(parse_topology("fattree:4").is_err());
        assert!(parse_topology("clusters:x8").is_err());
        assert!(parse_topology("blob:3").is_err());
        assert!(parse_topology("mesh:3").is_err());
        assert!(parse_topology("nocolon").is_err());
    }

    #[test]
    fn workload_specs() {
        assert_eq!(parse_workload("ge:6").unwrap().len(), 5 + 15);
        assert_eq!(parse_workload("stencil:4x3").unwrap().len(), 12);
        assert_eq!(parse_workload("fft:3").unwrap().len(), 32);
        assert_eq!(parse_workload("pipe:2x3").unwrap().len(), 6);
        assert!(parse_workload("ge:1").is_err());
        assert!(parse_workload("wat:1").is_err());
    }
}

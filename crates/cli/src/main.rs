//! `mimd` — command-line front-end for the MIMD mapping-strategy
//! reproduction.
//!
//! ```text
//! mimd generate --tasks 96 --seed 7 --dot            # random problem graph
//! mimd topology --spec 'hypercube:3' --dot           # build & inspect a machine
//! mimd map --tasks 96 --spec 'mesh:3x4' --seed 7     # full pipeline
//! mimd map --workload ge:12 --spec 'hypercube:3'     # structured workloads
//! mimd simulate --tasks 96 --spec 'ring:8' --contention
//! mimd paper                                          # the worked example
//! ```

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    }
}

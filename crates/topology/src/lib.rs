//! System-graph topologies for the MIMD mapping reproduction.
//!
//! The paper evaluates its strategy by mapping random problem graphs onto
//! **hypercubes** (Table 1 / Fig 25), **meshes** (Table 2 / Fig 26) and
//! **randomly produced topologies** (Table 3 / Fig 27), using 4–40
//! processors. This crate builds those topologies — plus rings, chains,
//! stars, trees, tori and complete graphs for wider coverage — and wraps
//! each in a [`SystemGraph`] that caches exactly the auxiliary structures
//! the paper's algorithms consume (§3.4):
//!
//! * `sys_edge[ns][ns]` — adjacency ([`SystemGraph::graph`]),
//! * `shortest[ns][ns]` — all-pairs hop counts ([`SystemGraph::distances`]),
//! * `deg[ns]` — node degrees ([`SystemGraph::degree`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builders;
pub mod exotic;
pub mod spec;
mod system;

pub use builders::{
    binary_tree, chain, clustered_complete, complete, fat_tree, hypercube, mesh2d, random_topology,
    ring, star, torus2d,
};
pub use exotic::{cube_connected_cycles, de_bruijn};
pub use spec::TopologySpec;
pub use system::SystemGraph;

//! Bounded-degree interconnects from the MIMD literature of the paper's
//! era: cube-connected cycles (Preparata & Vuillemin 1981) and de Bruijn
//! networks. Both keep every router at degree 3 while preserving
//! logarithmic diameter — exactly the trade-off the paper's Fig 8 system
//! graph (8 nodes, all degree 3) illustrates.

use mimd_graph::error::GraphError;
use mimd_graph::ungraph::UnGraph;

use crate::system::SystemGraph;

/// Cube-connected cycles CCC(d): each of the `2^d` hypercube corners is
/// replaced by a `d`-cycle; node `(x, i)` connects to its cycle
/// neighbors `(x, i±1)` and across dimension `i` to `(x ^ 2^i, i)`.
/// `d >= 3` gives the classic 3-regular network of `d · 2^d` nodes.
pub fn cube_connected_cycles(d: u32) -> Result<SystemGraph, GraphError> {
    if !(3..=10).contains(&d) {
        return Err(GraphError::InvalidParameter(format!(
            "cube-connected cycles need 3 <= d <= 10, got {d}"
        )));
    }
    let corners = 1usize << d;
    let d = d as usize;
    let id = |x: usize, i: usize| x * d + i;
    let mut g = UnGraph::new(corners * d);
    for x in 0..corners {
        for i in 0..d {
            // Cycle edge.
            g.add_edge(id(x, i), id(x, (i + 1) % d))?;
            // Cube edge along dimension i.
            let y = x ^ (1usize << i);
            if x < y {
                g.add_edge(id(x, i), id(y, i))?;
            }
        }
    }
    SystemGraph::new(format!("ccc(d={d})"), g)
}

/// Undirected binary de Bruijn network DB(d): `2^d` nodes; node `x`
/// connects to its shift neighbors `(2x) mod 2^d` and `(2x + 1) mod 2^d`
/// (self-loops and multi-edges collapse, so degrees are ≤ 4).
pub fn de_bruijn(d: u32) -> Result<SystemGraph, GraphError> {
    if !(2..=12).contains(&d) {
        return Err(GraphError::InvalidParameter(format!(
            "de Bruijn network needs 2 <= d <= 12, got {d}"
        )));
    }
    let n = 1usize << d;
    let mut g = UnGraph::new(n);
    for x in 0..n {
        for b in 0..2usize {
            let y = (2 * x + b) % n;
            if x != y {
                g.add_edge(x, y)?;
            }
        }
    }
    SystemGraph::new(format!("debruijn(d={d})"), g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_graph::properties::{is_connected, max_degree, regularity};

    #[test]
    fn ccc_is_3_regular_and_connected() {
        for d in 3..=5u32 {
            let ccc = cube_connected_cycles(d).unwrap();
            assert_eq!(ccc.len(), (d as usize) << d, "d={d}");
            assert_eq!(regularity(ccc.graph()), Some(3), "d={d}");
            assert!(is_connected(ccc.graph()));
            // Diameter is Θ(d): at least d, at most 3d.
            assert!(ccc.diameter() >= d);
            assert!(ccc.diameter() <= 3 * d);
        }
    }

    #[test]
    fn ccc_rejects_bad_dims() {
        assert!(cube_connected_cycles(2).is_err());
        assert!(cube_connected_cycles(11).is_err());
    }

    #[test]
    fn de_bruijn_has_log_diameter_and_bounded_degree() {
        for d in 2..=6u32 {
            let db = de_bruijn(d).unwrap();
            assert_eq!(db.len(), 1 << d);
            assert!(is_connected(db.graph()));
            assert!(max_degree(db.graph()) <= 4, "d={d}");
            assert!(
                db.diameter() <= d,
                "shift routing reaches any label in d steps"
            );
        }
    }

    #[test]
    fn de_bruijn_rejects_bad_dims() {
        assert!(de_bruijn(1).is_err());
        assert!(de_bruijn(13).is_err());
    }

    #[test]
    fn exotic_networks_map_end_to_end() {
        // Smoke test: the mapper runs on these machines (ns = 24, 16).
        use mimd_taskgraph::clustering::region::random_region_clustering;
        use mimd_taskgraph::{ClusteredProblemGraph, GeneratorConfig, LayeredDagGenerator};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for sys in [cube_connected_cycles(3).unwrap(), de_bruijn(4).unwrap()] {
            let mut rng = StdRng::seed_from_u64(1);
            let gen = LayeredDagGenerator::new(GeneratorConfig {
                tasks: 4 * sys.len(),
                ..GeneratorConfig::default()
            })
            .unwrap();
            let p = gen.generate(&mut rng);
            let c = random_region_clustering(&p, sys.len(), &mut rng).unwrap();
            let g = ClusteredProblemGraph::new(p, c).unwrap();
            // Just the distance structure is exercised here; the real
            // mapping integration lives in the root test suite.
            assert!(g.num_clusters() == sys.len());
        }
    }
}

//! Serializable topology descriptions, so experiment configurations can
//! be written down (and re-run) as data. Each [`TopologySpec`] builds the
//! corresponding [`SystemGraph`].

use rand::Rng;
use serde::{Deserialize, Serialize};

use mimd_graph::error::GraphError;

use crate::builders;
use crate::system::SystemGraph;

/// A declarative description of a system topology.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TopologySpec {
    /// Binary hypercube of the given dimension (`2^dim` processors).
    Hypercube {
        /// Dimension `d`; the system has `2^d` nodes.
        dim: u32,
    },
    /// 2-D mesh.
    Mesh {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// 2-D torus.
    Torus {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Cycle of `n` processors.
    Ring {
        /// Node count (≥ 3).
        n: usize,
    },
    /// Path of `n` processors.
    Chain {
        /// Node count (≥ 1).
        n: usize,
    },
    /// Hub-and-spokes on `n` processors.
    Star {
        /// Node count (≥ 1).
        n: usize,
    },
    /// Complete binary tree on `n` processors.
    BinaryTree {
        /// Node count (≥ 1).
        n: usize,
    },
    /// Fully connected system (the closure itself).
    Complete {
        /// Node count (≥ 1).
        n: usize,
    },
    /// Fat-tree-style hierarchical topology: complete `arity`-ary tree
    /// of `levels` levels with sibling cliques.
    FatTree {
        /// Number of tree levels (≥ 1).
        levels: u32,
        /// Children per internal node (≥ 1).
        arity: usize,
    },
    /// PERCS-style two-level topology: `groups` cliques of `group_size`
    /// processors, every pair of groups joined by one direct link.
    ClusteredComplete {
        /// Number of groups (≥ 1).
        groups: usize,
        /// Processors per group (≥ 1).
        group_size: usize,
    },
    /// Random connected graph: spanning tree + extra edges w.p. `p`.
    Random {
        /// Node count (≥ 1).
        n: usize,
        /// Probability of each additional edge beyond the spanning tree.
        p: f64,
    },
}

impl TopologySpec {
    /// Number of processors this spec will produce.
    pub fn node_count(&self) -> usize {
        match *self {
            TopologySpec::Hypercube { dim } => 1usize << dim,
            TopologySpec::Mesh { rows, cols } | TopologySpec::Torus { rows, cols } => rows * cols,
            TopologySpec::Ring { n }
            | TopologySpec::Chain { n }
            | TopologySpec::Star { n }
            | TopologySpec::BinaryTree { n }
            | TopologySpec::Complete { n }
            | TopologySpec::Random { n, .. } => n,
            TopologySpec::FatTree { levels, arity } => {
                // 1 + arity + ... + arity^(levels-1), saturating.
                let mut n = 0usize;
                let mut layer = 1usize;
                for _ in 0..levels {
                    n = n.saturating_add(layer);
                    layer = layer.saturating_mul(arity);
                }
                n
            }
            TopologySpec::ClusteredComplete { groups, group_size } => {
                groups.saturating_mul(group_size)
            }
        }
    }

    /// `true` iff building this spec consumes the RNG (and therefore
    /// different seeds yield different machines). Kept next to
    /// [`TopologySpec::build`] so a new stochastic variant updates both
    /// or fails review in one place; topology caches key on this.
    pub fn is_stochastic(&self) -> bool {
        matches!(*self, TopologySpec::Random { .. })
    }

    /// Build the topology. Only [`TopologySpec::Random`] consumes the RNG;
    /// the deterministic shapes ignore it.
    pub fn build(&self, rng: &mut impl Rng) -> Result<SystemGraph, GraphError> {
        match *self {
            TopologySpec::Hypercube { dim } => builders::hypercube(dim),
            TopologySpec::Mesh { rows, cols } => builders::mesh2d(rows, cols),
            TopologySpec::Torus { rows, cols } => builders::torus2d(rows, cols),
            TopologySpec::Ring { n } => builders::ring(n),
            TopologySpec::Chain { n } => builders::chain(n),
            TopologySpec::Star { n } => builders::star(n),
            TopologySpec::BinaryTree { n } => builders::binary_tree(n),
            TopologySpec::Complete { n } => builders::complete(n),
            TopologySpec::FatTree { levels, arity } => builders::fat_tree(levels, arity),
            TopologySpec::ClusteredComplete { groups, group_size } => {
                builders::clustered_complete(groups, group_size)
            }
            TopologySpec::Random { n, p } => builders::random_topology(n, p, rng),
        }
    }
}

impl std::fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TopologySpec::Hypercube { dim } => write!(f, "hypercube(d={dim})"),
            TopologySpec::Mesh { rows, cols } => write!(f, "mesh({rows}x{cols})"),
            TopologySpec::Torus { rows, cols } => write!(f, "torus({rows}x{cols})"),
            TopologySpec::Ring { n } => write!(f, "ring({n})"),
            TopologySpec::Chain { n } => write!(f, "chain({n})"),
            TopologySpec::Star { n } => write!(f, "star({n})"),
            TopologySpec::BinaryTree { n } => write!(f, "btree({n})"),
            TopologySpec::Complete { n } => write!(f, "complete({n})"),
            TopologySpec::FatTree { levels, arity } => write!(f, "fattree(l={levels},a={arity})"),
            TopologySpec::ClusteredComplete { groups, group_size } => {
                write!(f, "clusters({groups}x{group_size})")
            }
            TopologySpec::Random { n, p } => write!(f, "random({n},p={p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn node_counts_match_builds() {
        let mut rng = StdRng::seed_from_u64(1);
        let specs = [
            TopologySpec::Hypercube { dim: 3 },
            TopologySpec::Mesh { rows: 2, cols: 5 },
            TopologySpec::Torus { rows: 3, cols: 3 },
            TopologySpec::Ring { n: 6 },
            TopologySpec::Chain { n: 4 },
            TopologySpec::Star { n: 7 },
            TopologySpec::BinaryTree { n: 9 },
            TopologySpec::Complete { n: 5 },
            TopologySpec::FatTree {
                levels: 3,
                arity: 3,
            },
            TopologySpec::ClusteredComplete {
                groups: 3,
                group_size: 4,
            },
            TopologySpec::Random { n: 11, p: 0.25 },
        ];
        for spec in specs {
            let built = spec.build(&mut rng).unwrap();
            assert_eq!(built.len(), spec.node_count(), "{spec}");
        }
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(
            TopologySpec::Hypercube { dim: 4 }.to_string(),
            "hypercube(d=4)"
        );
        assert_eq!(
            TopologySpec::Mesh { rows: 4, cols: 10 }.to_string(),
            "mesh(4x10)"
        );
        assert_eq!(
            TopologySpec::FatTree {
                levels: 3,
                arity: 4
            }
            .to_string(),
            "fattree(l=3,a=4)"
        );
        assert_eq!(
            TopologySpec::ClusteredComplete {
                groups: 8,
                group_size: 32
            }
            .to_string(),
            "clusters(8x32)"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let spec = TopologySpec::Random { n: 12, p: 0.3 };
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("random"));
        let back: TopologySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}

//! [`SystemGraph`]: a validated, connected processor topology together
//! with the cached matrices the mapping algorithms read on every
//! evaluation.

use serde::{Deserialize, Serialize};

use mimd_graph::apsp::DistanceMatrix;
use mimd_graph::error::GraphError;
use mimd_graph::properties::is_connected;
use mimd_graph::ungraph::UnGraph;
use mimd_graph::NodeId;

/// A connected MIMD interconnection topology with precomputed shortest
/// paths and degrees.
///
/// The paper's evaluator multiplies every clustered-edge weight by
/// `shortest[vs_l][vs_m]` (§4.3.4 Algorithm I); caching the BFS results
/// here keeps each total-time evaluation at the paper's `O(np²)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SystemGraph {
    name: String,
    graph: UnGraph,
    distances: DistanceMatrix,
    degrees: Vec<usize>,
}

impl SystemGraph {
    /// Wrap a topology, validating that it is connected and non-empty.
    pub fn new(name: impl Into<String>, graph: UnGraph) -> Result<Self, GraphError> {
        if graph.node_count() == 0 {
            return Err(GraphError::InvalidParameter(
                "system graph needs >= 1 node".into(),
            ));
        }
        if !is_connected(&graph) {
            return Err(GraphError::Disconnected);
        }
        let distances = DistanceMatrix::bfs_all_pairs(&graph)?;
        let degrees = graph.degree_vector();
        Ok(SystemGraph {
            name: name.into(),
            graph,
            distances,
            degrees,
        })
    }

    /// Wrap a topology together with a precomputed APSP matrix, skipping
    /// the BFS sweep. The matrix must have the graph's node count and
    /// agree with the graph on adjacency (distance 1 ⇔ edge); callers
    /// that cache distance matrices across requests (the batch engine's
    /// topology cache) use this to share artifacts instead of
    /// recomputing them per job.
    pub fn with_distances(
        name: impl Into<String>,
        graph: UnGraph,
        distances: DistanceMatrix,
    ) -> Result<Self, GraphError> {
        if graph.node_count() == 0 {
            return Err(GraphError::InvalidParameter(
                "system graph needs >= 1 node".into(),
            ));
        }
        if distances.n() != graph.node_count() {
            return Err(GraphError::SizeMismatch {
                left: distances.n(),
                right: graph.node_count(),
            });
        }
        for u in 0..graph.node_count() {
            for v in 0..graph.node_count() {
                if (distances.hops(u, v) == 1) != graph.has_edge(u, v) {
                    return Err(GraphError::InvalidParameter(format!(
                        "distance matrix disagrees with adjacency at ({u},{v})"
                    )));
                }
            }
        }
        let degrees = graph.degree_vector();
        Ok(SystemGraph {
            name: name.into(),
            graph,
            distances,
            degrees,
        })
    }

    /// Human-readable topology name (e.g. `"hypercube(d=3)"`), used in
    /// reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processors `ns`.
    #[inline]
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// `true` iff the system has zero processors (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.graph.node_count() == 0
    }

    /// The underlying adjacency structure (the paper's `sys_edge`).
    #[inline]
    pub fn graph(&self) -> &UnGraph {
        &self.graph
    }

    /// The all-pairs hop-count matrix (the paper's `shortest[ns][ns]`).
    #[inline]
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }

    /// Hop count between processors `u` and `v`.
    #[inline]
    pub fn hops(&self, u: NodeId, v: NodeId) -> u32 {
        self.distances.hops(u, v)
    }

    /// Degree of processor `u` (the paper's `deg[u]`).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.degrees[u]
    }

    /// All degrees (the paper's `deg[ns]` matrix).
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }

    /// `true` iff processors `u` and `v` share a physical link.
    #[inline]
    pub fn adjacent(&self, u: NodeId, v: NodeId) -> bool {
        self.graph.has_edge(u, v)
    }

    /// Network diameter in hops.
    pub fn diameter(&self) -> u32 {
        self.distances.diameter()
    }

    /// The closure of this topology (complete graph on the same
    /// processors) — mapping onto it yields the paper's *ideal graph*.
    pub fn closure(&self) -> SystemGraph {
        SystemGraph::new(format!("{}-closure", self.name), self.graph.closure())
            .expect("closure of a nonempty graph is connected")
    }

    /// Processor ids sorted by descending degree, ties by ascending id —
    /// the order in which the initial assignment consumes processors.
    pub fn by_descending_degree(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = (0..self.len()).collect();
        ids.sort_by_key(|&u| (std::cmp::Reverse(self.degrees[u]), u));
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring4() -> SystemGraph {
        let mut g = UnGraph::new(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4).unwrap();
        }
        SystemGraph::new("ring4", g).unwrap()
    }

    #[test]
    fn caches_match_paper_fig21() {
        let s = ring4();
        assert_eq!(s.len(), 4);
        assert_eq!(s.degrees(), &[2, 2, 2, 2]);
        assert_eq!(s.hops(0, 2), 2);
        assert_eq!(s.hops(0, 1), 1);
        assert_eq!(s.diameter(), 2);
        assert!(s.adjacent(3, 0));
        assert!(!s.adjacent(0, 2));
    }

    #[test]
    fn with_distances_reuses_a_precomputed_matrix() {
        let base = ring4();
        let rebuilt = SystemGraph::with_distances(
            "ring4-shared",
            base.graph().clone(),
            base.distances().clone(),
        )
        .unwrap();
        assert_eq!(rebuilt.distances(), base.distances());
        assert_eq!(rebuilt.degrees(), base.degrees());
        assert_eq!(rebuilt.diameter(), base.diameter());

        // Wrong size is rejected.
        let mut small = UnGraph::new(2);
        small.add_edge(0, 1).unwrap();
        assert!(SystemGraph::with_distances("bad", small, base.distances().clone()).is_err());

        // A matrix contradicting adjacency is rejected.
        let other = {
            let mut g = UnGraph::new(4);
            for i in 0..3 {
                g.add_edge(i, i + 1).unwrap();
            }
            SystemGraph::new("chain4", g).unwrap()
        };
        assert!(SystemGraph::with_distances(
            "bad",
            base.graph().clone(),
            other.distances().clone()
        )
        .is_err());
    }

    #[test]
    fn rejects_disconnected_and_empty() {
        let mut g = UnGraph::new(3);
        g.add_edge(0, 1).unwrap();
        assert!(matches!(
            SystemGraph::new("bad", g),
            Err(GraphError::Disconnected)
        ));
        assert!(SystemGraph::new("empty", UnGraph::new(0)).is_err());
    }

    #[test]
    fn closure_has_unit_distances() {
        let c = ring4().closure();
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(c.hops(u, v), u32::from(u != v));
            }
        }
        assert!(c.name().contains("closure"));
    }

    #[test]
    fn descending_degree_order() {
        let mut g = UnGraph::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(1, 3).unwrap();
        g.add_edge(2, 3).unwrap();
        let s = SystemGraph::new("t", g).unwrap();
        // degrees: 0->1, 1->3, 2->2, 3->2
        assert_eq!(s.by_descending_degree(), vec![1, 2, 3, 0]);
    }

    #[test]
    fn singleton_system_is_valid() {
        let s = SystemGraph::new("one", UnGraph::new(1)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.diameter(), 0);
    }
}

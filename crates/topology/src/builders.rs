//! Constructors for the standard interconnection topologies.
//!
//! Table 1 maps onto hypercubes, Table 2 onto meshes, Table 3 onto random
//! connected graphs; the remaining shapes (ring, chain, star, tree, torus,
//! complete) round out the library for examples and ablations. Every
//! builder returns a validated [`SystemGraph`].

use rand::Rng;

use mimd_graph::error::GraphError;
use mimd_graph::generators;
use mimd_graph::ungraph::UnGraph;

use crate::system::SystemGraph;

/// `d`-dimensional binary hypercube on `2^d` processors: nodes are bit
/// strings, edges join strings at Hamming distance 1. The paper's Table 1
/// systems (ns ∈ {4, 8, 16, 32}) are hypercubes of dimension 2–5.
pub fn hypercube(dim: u32) -> Result<SystemGraph, GraphError> {
    if dim > 16 {
        return Err(GraphError::InvalidParameter(format!(
            "hypercube dim {dim} too large"
        )));
    }
    let n = 1usize << dim;
    let mut g = UnGraph::new(n);
    for u in 0..n {
        for b in 0..dim {
            let v = u ^ (1usize << b);
            if u < v {
                g.add_edge(u, v)?;
            }
        }
    }
    SystemGraph::new(format!("hypercube(d={dim})"), g)
}

/// `rows × cols` 2-D mesh (grid without wraparound); node `(r, c)` has id
/// `r * cols + c`. The paper's Table 2 systems.
pub fn mesh2d(rows: usize, cols: usize) -> Result<SystemGraph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidParameter(
            "mesh needs rows, cols >= 1".into(),
        ));
    }
    let mut g = UnGraph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                g.add_edge(id, id + 1)?;
            }
            if r + 1 < rows {
                g.add_edge(id, id + cols)?;
            }
        }
    }
    SystemGraph::new(format!("mesh({rows}x{cols})"), g)
}

/// `rows × cols` 2-D torus (mesh with wraparound links). Degenerate sizes
/// (a dimension of 1 or 2) collapse duplicate wraparound edges, which the
/// simple-graph representation de-duplicates automatically.
pub fn torus2d(rows: usize, cols: usize) -> Result<SystemGraph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidParameter(
            "torus needs rows, cols >= 1".into(),
        ));
    }
    if rows * cols == 1 {
        return SystemGraph::new("torus(1x1)", UnGraph::new(1));
    }
    let mut g = UnGraph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            let right = r * cols + (c + 1) % cols;
            let down = ((r + 1) % rows) * cols + c;
            if right != id {
                g.add_edge(id, right)?;
            }
            if down != id {
                g.add_edge(id, down)?;
            }
        }
    }
    SystemGraph::new(format!("torus({rows}x{cols})"), g)
}

/// Ring (cycle) of `n >= 3` processors. The paper's worked example (Figs
/// 5-a, 21) runs on `ring(4)`.
pub fn ring(n: usize) -> Result<SystemGraph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameter(format!(
            "ring needs n >= 3, got {n}"
        )));
    }
    let mut g = UnGraph::new(n);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n)?;
    }
    SystemGraph::new(format!("ring({n})"), g)
}

/// Chain (path) of `n >= 1` processors.
pub fn chain(n: usize) -> Result<SystemGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter("chain needs n >= 1".into()));
    }
    let mut g = UnGraph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i)?;
    }
    SystemGraph::new(format!("chain({n})"), g)
}

/// Star: processor 0 is the hub connected to all `n - 1` leaves.
pub fn star(n: usize) -> Result<SystemGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter("star needs n >= 1".into()));
    }
    let mut g = UnGraph::new(n);
    for leaf in 1..n {
        g.add_edge(0, leaf)?;
    }
    SystemGraph::new(format!("star({n})"), g)
}

/// Complete binary tree on `n >= 1` processors in heap order
/// (children of `i` are `2i + 1`, `2i + 2`).
pub fn binary_tree(n: usize) -> Result<SystemGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter("tree needs n >= 1".into()));
    }
    let mut g = UnGraph::new(n);
    for i in 1..n {
        g.add_edge(i, (i - 1) / 2)?;
    }
    SystemGraph::new(format!("btree({n})"), g)
}

/// Complete graph on `n` processors — the closure topology itself; every
/// assignment onto it achieves the ideal-graph lower bound.
pub fn complete(n: usize) -> Result<SystemGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter(
            "complete graph needs n >= 1".into(),
        ));
    }
    SystemGraph::new(format!("complete({n})"), UnGraph::new(n).closure())
}

/// Fat-tree-style hierarchical topology on `(arity^levels - 1)/(arity-1)`
/// processors: a complete `arity`-ary tree of `levels` levels where, in
/// addition to the parent links, every sibling group forms a clique. The
/// sibling cliques stand in for the fat intra-pod bandwidth of real
/// fat-trees (cf. the PERCS/fat-tree mapping literature) while keeping
/// the unweighted-link model; the result has strong hierarchical
/// locality, which makes it a natural multilevel coarsening target.
pub fn fat_tree(levels: u32, arity: usize) -> Result<SystemGraph, GraphError> {
    if levels == 0 || arity == 0 {
        return Err(GraphError::InvalidParameter(
            "fat tree needs levels, arity >= 1".into(),
        ));
    }
    // n = 1 + arity + arity^2 + ... + arity^(levels-1), overflow-checked.
    let mut n: usize = 0;
    let mut layer: usize = 1;
    let mut layer_starts = Vec::with_capacity(levels as usize);
    for _ in 0..levels {
        layer_starts.push(n);
        n = n
            .checked_add(layer)
            .filter(|&total| total <= 1 << 20)
            .ok_or_else(|| {
                GraphError::InvalidParameter(format!("fat_tree(l={levels},a={arity}) too large"))
            })?;
        layer = layer.saturating_mul(arity);
    }
    let mut g = UnGraph::new(n);
    for level in 1..levels as usize {
        let start = layer_starts[level];
        let end = if level + 1 < levels as usize {
            layer_starts[level + 1]
        } else {
            n
        };
        for v in start..end {
            // Parent link: nodes of a layer are ordered by parent.
            let parent = layer_starts[level - 1] + (v - start) / arity;
            g.add_edge(v, parent)?;
            // Sibling clique within the same parent's child group.
            let group_first = start + ((v - start) / arity) * arity;
            for u in group_first..v {
                g.add_edge(u, v)?;
            }
        }
    }
    SystemGraph::new(format!("fattree(l={levels},a={arity})"), g)
}

/// PERCS-style two-level "clustered complete" topology on
/// `groups × group_size` processors: every group is a clique (supernode
/// local links), and every pair of groups is joined by exactly one
/// direct link (the D-link of Chakaravarthy et al., *Mapping Strategies
/// for the PERCS Architecture*). Group `a`'s member `b mod group_size`
/// connects to group `b`'s member `a mod group_size`, spreading the
/// inter-group links across members.
pub fn clustered_complete(groups: usize, group_size: usize) -> Result<SystemGraph, GraphError> {
    if groups == 0 || group_size == 0 {
        return Err(GraphError::InvalidParameter(
            "clustered complete needs groups, group_size >= 1".into(),
        ));
    }
    let n = groups
        .checked_mul(group_size)
        .filter(|&total| total <= 1 << 20)
        .ok_or_else(|| {
            GraphError::InvalidParameter(format!("clusters({groups}x{group_size}) too large"))
        })?;
    let mut g = UnGraph::new(n);
    for a in 0..groups {
        let base = a * group_size;
        for i in 0..group_size {
            for j in (i + 1)..group_size {
                g.add_edge(base + i, base + j)?;
            }
        }
        for b in (a + 1)..groups {
            let u = base + b % group_size;
            let v = b * group_size + a % group_size;
            g.add_edge(u, v)?;
        }
    }
    SystemGraph::new(format!("clusters({groups}x{group_size})"), g)
}

/// Random connected topology on `n` processors: spanning tree plus each
/// extra edge with probability `extra_edge_prob` (Table 3 / Fig 27).
pub fn random_topology(
    n: usize,
    extra_edge_prob: f64,
    rng: &mut impl Rng,
) -> Result<SystemGraph, GraphError> {
    let g = generators::random_connected(n, extra_edge_prob, rng)?;
    SystemGraph::new(format!("random({n},p={extra_edge_prob})"), g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_graph::properties::regularity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hypercube_structure() {
        let h = hypercube(3).unwrap();
        assert_eq!(h.len(), 8);
        assert_eq!(h.graph().edge_count(), 12);
        assert_eq!(regularity(h.graph()), Some(3));
        assert_eq!(h.diameter(), 3);
        // Hamming-distance property: 0b000 adjacent to 0b001, 0b010, 0b100.
        assert!(h.adjacent(0, 1) && h.adjacent(0, 2) && h.adjacent(0, 4));
        assert!(!h.adjacent(0, 3));
    }

    #[test]
    fn hypercube_dim0_is_single_node() {
        let h = hypercube(0).unwrap();
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn mesh_structure() {
        let m = mesh2d(3, 4).unwrap();
        assert_eq!(m.len(), 12);
        // Edge count: rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17.
        assert_eq!(m.graph().edge_count(), 17);
        assert_eq!(m.diameter(), (3 - 1) + (4 - 1));
        // Corner degree 2, edge degree 3, interior degree 4.
        assert_eq!(m.degree(0), 2);
        assert_eq!(m.degree(1), 3);
        assert_eq!(m.degree(5), 4);
    }

    #[test]
    fn torus_is_4_regular_when_big_enough() {
        let t = torus2d(3, 3).unwrap();
        assert_eq!(regularity(t.graph()), Some(4));
        assert_eq!(t.graph().edge_count(), 18);
        // Degenerate sizes still build.
        assert!(torus2d(1, 5).is_ok());
        assert!(torus2d(2, 2).is_ok());
        assert_eq!(torus2d(1, 1).unwrap().len(), 1);
    }

    #[test]
    fn ring_chain_star_tree_complete() {
        assert_eq!(ring(5).unwrap().graph().edge_count(), 5);
        assert!(ring(2).is_err());
        assert_eq!(chain(5).unwrap().graph().edge_count(), 4);
        assert_eq!(chain(5).unwrap().diameter(), 4);
        let s = star(6).unwrap();
        assert_eq!(s.degree(0), 5);
        assert_eq!(s.diameter(), 2);
        let t = binary_tree(7).unwrap();
        assert_eq!(t.graph().edge_count(), 6);
        assert_eq!(t.degree(0), 2);
        let k = complete(5).unwrap();
        assert_eq!(k.graph().edge_count(), 10);
        assert_eq!(k.diameter(), 1);
    }

    #[test]
    fn fat_tree_structure() {
        // 3 levels, arity 2: 1 + 2 + 4 = 7 nodes.
        let t = fat_tree(3, 2).unwrap();
        assert_eq!(t.len(), 7);
        // Tree edges (6) + one sibling edge per 2-child group (3).
        assert_eq!(t.graph().edge_count(), 9);
        // Siblings are directly linked: children of the root are 1 and 2.
        assert!(t.adjacent(1, 2));
        // Leaves 3,4 share parent 1; leaves 5,6 share parent 2.
        assert!(t.adjacent(3, 4) && t.adjacent(3, 1));
        assert!(!t.adjacent(3, 5), "different pods are not linked");
        assert_eq!(fat_tree(1, 4).unwrap().len(), 1);
        // Arity 1 degenerates to a chain.
        let chain3 = fat_tree(3, 1).unwrap();
        assert_eq!(chain3.len(), 3);
        assert_eq!(chain3.diameter(), 2);
    }

    #[test]
    fn clustered_complete_structure() {
        let c = clustered_complete(4, 8).unwrap();
        assert_eq!(c.len(), 32);
        // Local cliques: 4 * C(8,2) = 112; inter-group: C(4,2) = 6.
        assert_eq!(c.graph().edge_count(), 112 + 6);
        // Everything within a group is one hop.
        assert_eq!(c.hops(0, 7), 1);
        // Any two processors are at most 3 hops apart (local, D-link, local).
        assert!(c.diameter() <= 3);
        assert_eq!(clustered_complete(1, 1).unwrap().len(), 1);
        assert_eq!(clustered_complete(3, 1).unwrap().graph().edge_count(), 3);
    }

    #[test]
    fn hierarchical_builders_reject_bad_parameters() {
        assert!(fat_tree(0, 2).is_err());
        assert!(fat_tree(2, 0).is_err());
        assert!(fat_tree(30, 8).is_err(), "size cap");
        assert!(clustered_complete(0, 4).is_err());
        assert!(clustered_complete(4, 0).is_err());
        assert!(clustered_complete(1 << 12, 1 << 12).is_err(), "size cap");
    }

    #[test]
    fn random_topology_connected_and_named() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = random_topology(15, 0.2, &mut rng).unwrap();
        assert_eq!(r.len(), 15);
        assert!(r.name().starts_with("random("));
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(mesh2d(0, 3).is_err());
        assert!(torus2d(3, 0).is_err());
        assert!(chain(0).is_err());
        assert!(star(0).is_err());
        assert!(binary_tree(0).is_err());
        assert!(complete(0).is_err());
        assert!(hypercube(40).is_err());
    }
}

//! Property-based tests for topology builders.

use proptest::prelude::*;

use mimd_graph::properties::{is_connected, regularity};
use mimd_topology::{
    binary_tree, chain, complete, hypercube, mesh2d, ring, star, torus2d, TopologySpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hypercubes_are_regular_with_log_diameter(dim in 0u32..8) {
        let h = hypercube(dim).unwrap();
        prop_assert_eq!(h.len(), 1usize << dim);
        prop_assert_eq!(regularity(h.graph()), Some(dim as usize));
        prop_assert_eq!(h.diameter(), dim);
        prop_assert_eq!(h.graph().edge_count(), (dim as usize) << dim.saturating_sub(1));
    }

    #[test]
    fn meshes_have_manhattan_distances(rows in 1usize..7, cols in 1usize..7) {
        let m = mesh2d(rows, cols).unwrap();
        prop_assert_eq!(m.len(), rows * cols);
        prop_assert_eq!(u64::from(m.diameter()), (rows + cols - 2) as u64);
        // Distance between two nodes equals Manhattan distance.
        for r1 in 0..rows {
            for c1 in 0..cols {
                let a = r1 * cols + c1;
                let b = (rows - 1) * cols + (cols - 1);
                let manhattan = (rows - 1 - r1) + (cols - 1 - c1);
                prop_assert_eq!(m.hops(a, b) as usize, manhattan);
            }
        }
    }

    #[test]
    fn torus_diameter_halves_the_mesh(rows in 3usize..7, cols in 3usize..7) {
        let t = torus2d(rows, cols).unwrap();
        prop_assert_eq!(u64::from(t.diameter()), (rows / 2 + cols / 2) as u64);
        prop_assert_eq!(regularity(t.graph()), Some(4));
    }

    #[test]
    fn rings_chains_stars_trees(n in 3usize..40) {
        let r = ring(n).unwrap();
        prop_assert_eq!(regularity(r.graph()), Some(2));
        prop_assert_eq!(u64::from(r.diameter()), (n / 2) as u64);

        let c = chain(n).unwrap();
        prop_assert_eq!(u64::from(c.diameter()), (n - 1) as u64);

        let s = star(n).unwrap();
        prop_assert_eq!(s.degree(0), n - 1);
        prop_assert!(s.diameter() <= 2);

        let t = binary_tree(n).unwrap();
        prop_assert_eq!(t.graph().edge_count(), n - 1);
        prop_assert!(is_connected(t.graph()));

        let k = complete(n).unwrap();
        prop_assert_eq!(k.diameter(), 1);
        prop_assert!(k.graph().is_complete());
    }

    #[test]
    fn specs_build_what_they_promise(seed in 0u64..200, n in 2usize..30, p in 0.0f64..0.4) {
        let mut rng = StdRng::seed_from_u64(seed);
        for spec in [
            TopologySpec::Ring { n: n.max(3) },
            TopologySpec::Chain { n },
            TopologySpec::Star { n },
            TopologySpec::BinaryTree { n },
            TopologySpec::Complete { n },
            TopologySpec::Random { n, p },
        ] {
            let sys = spec.build(&mut rng).unwrap();
            prop_assert_eq!(sys.len(), spec.node_count(), "{}", spec);
            prop_assert!(is_connected(sys.graph()), "{}", spec);
        }
    }

    #[test]
    fn closure_distances_are_one(n in 2usize..20) {
        let sys = ring(n.max(3)).unwrap().closure();
        for u in 0..sys.len() {
            for v in 0..sys.len() {
                prop_assert_eq!(sys.hops(u, v), u32::from(u != v));
            }
        }
    }

    #[test]
    fn degree_order_is_sorted(seed in 0u64..200, n in 2usize..25) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sys = TopologySpec::Random { n, p: 0.2 }.build(&mut rng).unwrap();
        let order = sys.by_descending_degree();
        for w in order.windows(2) {
            prop_assert!(sys.degree(w[0]) >= sys.degree(w[1]));
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}

//! Property tests for the incremental evaluation engine: on a replayed
//! refinement run, every candidate the [`DeltaEvaluator`] prices must
//! equal `evaluate_assignment` on the materialized candidate —
//! bit-for-bit, under both models, with and without pins — and the
//! [`GainTable`] must stay equal to a from-scratch rebuild after every
//! accepted swap.

use proptest::prelude::*;

use mimd_core::delta::{DeltaEvaluator, DeltaWorkspace};
use mimd_core::evaluate::evaluate_assignment;
use mimd_core::gain::GainTable;
use mimd_core::schedule::EvaluationModel;
use mimd_core::{fisher_yates, Assignment};
use mimd_taskgraph::clustering::random::random_clustering;
use mimd_taskgraph::{ClusteredProblemGraph, GeneratorConfig, LayeredDagGenerator};
use mimd_topology::{hypercube, ring, torus2d, SystemGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn topology(index: usize, ns_hint: usize) -> SystemGraph {
    match index % 3 {
        0 => ring(ns_hint.max(3)).unwrap(),
        1 => hypercube(3).unwrap(),
        _ => torus2d(3, 3).unwrap(),
    }
}

fn instance(ns: usize, extra: usize, seed: u64) -> ClusteredProblemGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = LayeredDagGenerator::new(GeneratorConfig {
        tasks: ns + extra,
        ..GeneratorConfig::default()
    })
    .unwrap();
    let problem = gen.generate(&mut rng);
    let clustering = random_clustering(&problem, ns, &mut rng).unwrap();
    ClusteredProblemGraph::new(problem, clustering).unwrap()
}

fn full_total(
    graph: &ClusteredProblemGraph,
    system: &SystemGraph,
    assignment: &Assignment,
    model: EvaluationModel,
) -> u64 {
    evaluate_assignment(graph, system, assignment, model)
        .unwrap()
        .total()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replay a refinement-shaped run — alternating random subset
    /// re-placements and pairwise swaps, greedily accepting improvements
    /// so the committed base keeps moving — and check every staged
    /// candidate and every committed state against the full evaluator.
    #[test]
    fn delta_totals_match_full_evaluation_on_every_candidate(
        topo in 0usize..3,
        extra in 8usize..64,
        seed in 0u64..1_000_000,
        model_ix in 0usize..2,
        with_pins in 0usize..2,
    ) {
        let system = topology(topo, 6);
        let ns = system.len();
        let graph = instance(ns, extra, seed);
        let model = if model_ix == 0 {
            EvaluationModel::Precedence
        } else {
            EvaluationModel::Serialized
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let start = Assignment::random(ns, &mut rng);

        // Pins shrink the movable pool the way `refine` would.
        let movable: Vec<usize> = if with_pins == 1 {
            (0..ns).filter(|c| c % 3 != 0).collect()
        } else {
            (0..ns).collect()
        };
        prop_assert!(movable.len() >= 2);
        let free_sys: Vec<usize> = movable.iter().map(|&c| start.sys_of(c)).collect();

        let mut ws = DeltaWorkspace::new();
        let mut evaluator =
            DeltaEvaluator::attach(&mut ws, &graph, &system, model, &start).unwrap();
        prop_assert_eq!(evaluator.total(), full_total(&graph, &system, &start, model));

        let mut perm: Vec<usize> = (0..movable.len()).collect();
        let mut best = evaluator.total();
        for round in 0..15 {
            let (staged_total, expected) = if round % 2 == 0 {
                // Subset re-placement, exactly like the flat refine loop.
                fisher_yates(&mut perm, &mut rng);
                let mut expected = evaluator.assignment().clone();
                expected.place_subset(&movable, &free_sys, &perm);
                (evaluator.stage_place(&movable, &free_sys, &perm), expected)
            } else {
                // Pairwise swap between two movable clusters.
                let a = movable[rng.gen_range(0..movable.len())];
                let mut b = movable[rng.gen_range(0..movable.len())];
                if a == b {
                    b = movable[(movable.iter().position(|&c| c == a).unwrap() + 1)
                        % movable.len()];
                }
                let mut expected = evaluator.assignment().clone();
                expected.swap_clusters(a, b);
                (evaluator.stage_swap(a, b), expected)
            };
            // The staged total must equal a from-scratch evaluation of
            // the staged placement.
            prop_assert_eq!(staged_total, full_total(&graph, &system, &expected, model));

            if staged_total < best {
                evaluator.commit();
                best = staged_total;
                prop_assert_eq!(evaluator.assignment(), &expected);
            } else {
                evaluator.discard();
            }
            // Commit or rollback, the evaluator's committed state stays
            // exact.
            prop_assert_eq!(
                evaluator.total(),
                full_total(&graph, &system, evaluator.assignment(), model)
            );
        }
    }

    /// After any sequence of accepted swaps, the incrementally repaired
    /// gain table equals a from-scratch rebuild, its boundary predicate
    /// holds, and `swap_gain` predicts the external-cost drop exactly.
    #[test]
    fn gain_table_matches_rebuild_after_accepted_swaps(
        topo in 0usize..3,
        extra in 8usize..48,
        seed in 0u64..1_000_000,
        swaps in 1usize..12,
    ) {
        let system = topology(topo, 5);
        let ns = system.len();
        let graph = instance(ns, extra, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let mut assignment = Assignment::random(ns, &mut rng);
        let pinned: Vec<bool> = (0..ns).map(|c| c % 4 == 0).collect();
        let mut table = GainTable::new(&graph, &system, &assignment, &pinned);

        for _ in 0..swaps {
            let a = rng.gen_range(0..ns);
            let b = (a + 1 + rng.gen_range(0..ns - 1)) % ns;
            let ext_before: i64 = (0..ns).map(|c| table.ext(c) as i64).sum();
            let gain = table.swap_gain(a, b, &assignment, &system);

            assignment.swap_clusters(a, b);
            table.apply_swap(a, b, &assignment, &system);

            let fresh = GainTable::new(&graph, &system, &assignment, &pinned);
            let ext_after: i64 = (0..ns).map(|c| fresh.ext(c) as i64).sum();
            #[allow(clippy::needless_range_loop)]
            for c in 0..ns {
                prop_assert_eq!(table.ext(c), fresh.ext(c), "ext[{}] diverged", c);
                prop_assert_eq!(
                    table.boundary().contains(c),
                    fresh.boundary().contains(c),
                    "boundary[{}] diverged",
                    c
                );
                prop_assert_eq!(table.movable().contains(c), !pinned[c]);
                if table.boundary().contains(c) {
                    prop_assert!(table.movable().contains(c));
                }
            }
            // ext sums count each cross edge at both endpoints, so the
            // predicted drop appears twice.
            prop_assert_eq!(ext_before - ext_after, 2 * gain);
        }
    }
}

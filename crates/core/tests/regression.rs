//! Golden regression tests: fixed seeds must keep producing the same
//! mapping results. If an intentional algorithm change shifts these
//! numbers, update them consciously — the git diff of this file then
//! documents the behavioural change.
//!
//! Pinned against the workspace's in-tree deterministic `rand` stub
//! (xoshiro256** StdRng, crates/compat/rand): the build environment has
//! no crates.io access, so upstream rand's ChaCha12 stream — and the
//! constants originally derived from it — are not reproducible here.

use mimd_core::critical::{CriticalAnalysis, CriticalityMode};
use mimd_core::ideal::IdealSchedule;
use mimd_core::{Mapper, MapperConfig};
use mimd_taskgraph::clustering::region::random_region_clustering;
use mimd_taskgraph::{ClusteredProblemGraph, GeneratorConfig, LayeredDagGenerator};
use mimd_topology::{hypercube, mesh2d};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn golden_instance(seed: u64, np: usize, ns: usize) -> ClusteredProblemGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = LayeredDagGenerator::new(GeneratorConfig {
        tasks: np,
        avg_width: 8,
        p_forward: 0.3,
        p_skip: 0.02,
        task_weight: (2, 12),
        edge_weight: (1, 6),
        connect_layers: true,
        locality_window: Some(1),
    })
    .unwrap();
    let p = gen.generate(&mut rng);
    let c = random_region_clustering(&p, ns, &mut rng).unwrap();
    ClusteredProblemGraph::new(p, c).unwrap()
}

#[test]
fn golden_instance_shape_is_stable() {
    let g = golden_instance(2024, 96, 8);
    // These constants pin the generator + clustering byte-for-byte.
    assert_eq!(g.num_tasks(), 96);
    assert_eq!(g.num_clusters(), 8);
    assert_eq!(g.problem().graph().edge_count(), 171);
    assert_eq!(g.problem().sequential_time(), 679);
    assert_eq!(g.cross_edges().count(), 85);
    assert_eq!(g.total_cut_weight(), 310);
}

#[test]
fn golden_ideal_and_critical_are_stable() {
    let g = golden_instance(2024, 96, 8);
    let ideal = IdealSchedule::derive(&g);
    assert_eq!(ideal.lower_bound(), 125);
    let crit = CriticalAnalysis::analyze(&g, &ideal, CriticalityMode::PaperExact);
    assert_eq!(crit.critical_edges().len(), 1);
    let ext = CriticalAnalysis::analyze(&g, &ideal, CriticalityMode::Extended);
    assert!(ext.critical_edges().len() >= crit.critical_edges().len());
}

#[test]
fn golden_mapping_results_are_stable() {
    let g = golden_instance(2024, 96, 8);
    let cube = hypercube(3).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let r = Mapper::new().map(&g, &cube, &mut rng).unwrap();
    assert_eq!(r.lower_bound, 125);
    assert_eq!(r.total_time, 140);
    assert!(!r.refinement.reached_lower_bound);

    let mesh = mesh2d(2, 4).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let r = Mapper::new().map(&g, &mesh, &mut rng).unwrap();
    assert_eq!(r.total_time, 153);
}

#[test]
fn golden_results_depend_on_config_not_luck() {
    let g = golden_instance(2024, 96, 8);
    let cube = hypercube(3).unwrap();
    // Zero refinement: the initial assignment alone.
    let mapper = Mapper::with_config(MapperConfig {
        refine_iterations: Some(0),
        unpinned_fallback: false,
        ..MapperConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(7);
    let r0 = mapper.map(&g, &cube, &mut rng).unwrap();
    assert_eq!(r0.total_time, r0.initial_total, "no refinement applied");

    // Full config can only improve on it.
    let mut rng = StdRng::seed_from_u64(7);
    let r1 = Mapper::new().map(&g, &cube, &mut rng).unwrap();
    assert!(r1.total_time <= r0.total_time);
}

//! The paper's mapping strategy (Yang, Bic & Nicolau, ICPP 1991).
//!
//! Pipeline (the paper's Fig 1), given a clustered problem graph and a
//! system graph with `na = ns`:
//!
//! 1. **Ideal graph** ([`ideal`]) — schedule the clustered problem graph
//!    on the system graph *closure* (fully connected). Its makespan is a
//!    **lower bound** on every real assignment (Theorem 3).
//! 2. **Critical edges** ([`critical`]) — zero-slack edges on paths to
//!    the latest tasks (Theorems 1–2), aggregated per cluster pair into
//!    the critical abstract edge matrix and per-cluster critical degrees.
//! 3. **Initial assignment** ([`initial`]) — greedy constructive
//!    placement seeded by the most critical cluster on the best-connected
//!    processor, growing along critical abstract edges, finishing by
//!    communication intensity (§4.3.2).
//! 4. **Refinement** ([`mod@refine`]) — keep critical clusters pinned,
//!    randomly re-place the rest `ns` times, keep improvements, and stop
//!    the moment the total equals the lower bound (§4.3.3). The
//!    [`parallel`] module adds a multi-threaded variant.
//! 5. **Evaluation** ([`evaluate`]) — total execution time under an
//!    assignment: `comm = clus_edge × hops` then a precedence schedule
//!    (§4.3.4). [`schedule`] also offers a processor-serialized variant
//!    for the model ablation.
//!
//! [`Mapper`] bundles the whole pipeline behind one call.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assignment;
pub mod bounds;
pub mod critical;
pub mod delta;
pub mod evaluate;
pub mod gain;
pub mod ideal;
pub mod initial;
pub mod mapper;
pub mod parallel;
pub mod refine;
pub mod schedule;
pub mod shuffle;
pub mod validate;

pub use assignment::Assignment;
pub use critical::{CriticalAnalysis, CriticalityMode};
pub use delta::{DeltaEvaluator, DeltaWorkspace};
pub use evaluate::{evaluate_assignment, evaluate_total, Evaluation};
pub use gain::GainTable;
pub use ideal::IdealSchedule;
pub use initial::initial_assignment;
pub use mapper::{Mapper, MapperConfig, MappingResult};
pub use refine::{refine, refine_with, RefineConfig, RefineOutcome};
pub use schedule::{EvaluationModel, Schedule};
pub use shuffle::fisher_yates;
pub use validate::{validate_schedule, Violation};

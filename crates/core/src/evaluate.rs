//! Evaluating the total time of an assignment (§4.3.4).
//!
//! Under an assignment, a clustered edge `u -> v` costs
//! `clus_edge[u][v] × shortest[s_u][s_v]` where `s_u`, `s_v` are the
//! processors hosting the two clusters (§4.3.4 Algorithm I: the
//! communication matrix `comm[np][np]`). The start/end times then follow
//! from the same traversal as the ideal graph.

use serde::{Deserialize, Serialize};

use mimd_graph::error::GraphError;
use mimd_graph::Time;
use mimd_taskgraph::ClusteredProblemGraph;
use mimd_topology::SystemGraph;

use crate::assignment::Assignment;
use crate::schedule::{EvaluationModel, Schedule};

/// The result of evaluating one assignment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The evaluated assignment.
    pub assignment: Assignment,
    /// The derived schedule (start/end per task).
    pub schedule: Schedule,
    /// The model used.
    pub model: EvaluationModel,
}

impl Evaluation {
    /// The total time (makespan) of the assignment.
    #[inline]
    pub fn total(&self) -> Time {
        self.schedule.total()
    }
}

/// Evaluate `assignment` of `graph`'s clusters onto `system` under
/// `model`. Errors when the cluster count and processor count differ
/// (the paper requires `na = ns`) or the assignment has the wrong size.
pub fn evaluate_assignment(
    graph: &ClusteredProblemGraph,
    system: &SystemGraph,
    assignment: &Assignment,
    model: EvaluationModel,
) -> Result<Evaluation, GraphError> {
    if graph.num_clusters() != system.len() {
        return Err(GraphError::SizeMismatch {
            left: graph.num_clusters(),
            right: system.len(),
        });
    }
    if assignment.len() != system.len() {
        return Err(GraphError::SizeMismatch {
            left: assignment.len(),
            right: system.len(),
        });
    }
    let schedule = Schedule::compute(graph, model, |u, v| {
        let w = graph.clus_weight(u, v);
        if w == 0 {
            0
        } else {
            let su = assignment.sys_of(graph.cluster_of(u));
            let sv = assignment.sys_of(graph.cluster_of(v));
            w * Time::from(system.hops(su, sv))
        }
    });
    Ok(Evaluation {
        assignment: assignment.clone(),
        schedule,
        model,
    })
}

/// Total time of `assignment` without materializing an [`Evaluation`]:
/// skips the assignment clone and returns just the makespan. The
/// hot-path entry point for every caller that throws the schedule away
/// (refinement loops, random-mapping baselines, bound checks); totals
/// and error cases are identical to
/// [`evaluate_assignment`]`(..)?.total()`.
pub fn evaluate_total(
    graph: &ClusteredProblemGraph,
    system: &SystemGraph,
    assignment: &Assignment,
    model: EvaluationModel,
) -> Result<Time, GraphError> {
    if graph.num_clusters() != system.len() {
        return Err(GraphError::SizeMismatch {
            left: graph.num_clusters(),
            right: system.len(),
        });
    }
    if assignment.len() != system.len() {
        return Err(GraphError::SizeMismatch {
            left: assignment.len(),
            right: system.len(),
        });
    }
    let schedule = Schedule::compute(graph, model, |u, v| {
        let w = graph.clus_weight(u, v);
        if w == 0 {
            0
        } else {
            let su = assignment.sys_of(graph.cluster_of(u));
            let sv = assignment.sys_of(graph.cluster_of(v));
            w * Time::from(system.hops(su, sv))
        }
    });
    Ok(schedule.total())
}

/// The paper's §4.3.4 Algorithm I: the explicit communication matrix
/// `comm[np][np]` under an assignment, where `comm[i][j] =
/// clus_edge[i][j] × shortest[s_i][s_j]` (0 within a cluster). The
/// evaluator computes these values on the fly; this function
/// materializes the matrix for reports and debugging (cf. Fig 23-c).
pub fn communication_matrix(
    graph: &ClusteredProblemGraph,
    system: &SystemGraph,
    assignment: &Assignment,
) -> Result<mimd_graph::SquareMatrix<Time>, GraphError> {
    if graph.num_clusters() != system.len() {
        return Err(GraphError::SizeMismatch {
            left: graph.num_clusters(),
            right: system.len(),
        });
    }
    if assignment.len() != system.len() {
        return Err(GraphError::SizeMismatch {
            left: assignment.len(),
            right: system.len(),
        });
    }
    let mut m = mimd_graph::SquareMatrix::new(graph.num_tasks());
    for (u, v, w) in graph.cross_edges() {
        let su = assignment.sys_of(graph.cluster_of(u));
        let sv = assignment.sys_of(graph.cluster_of(v));
        m.set(u, v, w * Time::from(system.hops(su, sv)));
    }
    Ok(m)
}

/// Mean total time over `reps` uniformly random assignments — the
/// paper's baseline ("we performed several random mappings of the same
/// problem graph to the same system graph and take the average", §5).
/// Returns `(mean, minimum, maximum)`.
pub fn random_mapping_average(
    graph: &ClusteredProblemGraph,
    system: &SystemGraph,
    model: EvaluationModel,
    reps: usize,
    rng: &mut impl rand::Rng,
) -> Result<(f64, Time, Time), GraphError> {
    if reps == 0 {
        return Err(GraphError::InvalidParameter("need reps >= 1".into()));
    }
    let mut sum = 0u128;
    let mut min = Time::MAX;
    let mut max = 0;
    for _ in 0..reps {
        let a = Assignment::random(system.len(), rng);
        let total = evaluate_total(graph, system, &a, model)?;
        sum += u128::from(total);
        min = min.min(total);
        max = max.max(total);
    }
    Ok((sum as f64 / reps as f64, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_taskgraph::paper;
    use mimd_topology::ring;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig23_assignment_reaches_lower_bound() {
        // Fig 24: mapping the worked example onto the 4-ring with the
        // Fig 23-b assignment gives total time 14 = lower bound.
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        let a = Assignment::from_sys_of(paper::WORKED_OPTIMAL_ASSIGNMENT.to_vec()).unwrap();
        let eval = evaluate_assignment(&g, &sys, &a, EvaluationModel::Precedence).unwrap();
        assert_eq!(eval.total(), paper::WORKED_LOWER_BOUND);
    }

    #[test]
    fn closure_assignment_equals_ideal() {
        // On the closure every assignment achieves the ideal total.
        let g = paper::worked_example();
        let closure = ring(4).unwrap().closure();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let a = Assignment::random(4, &mut rng);
            let eval = evaluate_assignment(&g, &closure, &a, EvaluationModel::Precedence).unwrap();
            assert_eq!(eval.total(), paper::WORKED_LOWER_BOUND);
        }
    }

    #[test]
    fn no_assignment_beats_lower_bound() {
        // Theorem 3, verified exhaustively for the worked example.
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        // All 24 permutations of 4 clusters.
        fn perms(n: usize) -> Vec<Vec<usize>> {
            if n == 1 {
                return vec![vec![0]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for i in 0..n {
                    let mut q: Vec<usize> = p.iter().map(|&x| x + usize::from(x >= i)).collect();
                    q.insert(0, i);
                    out.push(q);
                }
            }
            out
        }
        for p in perms(4) {
            let a = Assignment::from_sys_of(p).unwrap();
            let eval = evaluate_assignment(&g, &sys, &a, EvaluationModel::Precedence).unwrap();
            assert!(eval.total() >= paper::WORKED_LOWER_BOUND);
        }
    }

    #[test]
    fn size_mismatches_rejected() {
        let g = paper::worked_example();
        let sys5 = ring(5).unwrap();
        let a = Assignment::identity(5);
        assert!(matches!(
            evaluate_assignment(&g, &sys5, &a, EvaluationModel::Precedence),
            Err(GraphError::SizeMismatch { .. })
        ));
        let sys4 = ring(4).unwrap();
        let a5 = Assignment::identity(5);
        assert!(evaluate_assignment(&g, &sys4, &a5, EvaluationModel::Precedence).is_err());
    }

    #[test]
    fn random_average_bounds() {
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let (mean, min, max) =
            random_mapping_average(&g, &sys, EvaluationModel::Precedence, 64, &mut rng).unwrap();
        assert!(min >= paper::WORKED_LOWER_BOUND);
        assert!(f64::from(u32::try_from(min).unwrap()) <= mean);
        assert!(mean <= f64::from(u32::try_from(max).unwrap()));
        assert!(
            random_mapping_average(&g, &sys, EvaluationModel::Precedence, 0, &mut rng).is_err()
        );
    }

    #[test]
    fn communication_matrix_matches_evaluator() {
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        let a = Assignment::from_sys_of(paper::WORKED_OPTIMAL_ASSIGNMENT.to_vec()).unwrap();
        let m = communication_matrix(&g, &sys, &a).unwrap();
        // Every entry equals clustered weight × hops; intra-cluster rows
        // stay zero.
        for (u, v, w) in g.cross_edges() {
            let su = a.sys_of(g.cluster_of(u));
            let sv = a.sys_of(g.cluster_of(v));
            assert_eq!(m.get(u, v), w * u64::from(sys.hops(su, sv)));
        }
        assert_eq!(
            m.get(0, 3),
            0,
            "intra-cluster edge (1,4) has no network cost"
        );
        // The schedule recomputed from the matrix matches the evaluator.
        let from_matrix = crate::schedule::Schedule::precedence(&g, |u, v| m.get(u, v));
        let eval = evaluate_assignment(&g, &sys, &a, EvaluationModel::Precedence).unwrap();
        assert_eq!(from_matrix.total(), eval.total());
        assert!(communication_matrix(&g, &ring(5).unwrap(), &a).is_err());
    }

    #[test]
    fn evaluate_total_matches_full_evaluation() {
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for model in [EvaluationModel::Precedence, EvaluationModel::Serialized] {
            for _ in 0..10 {
                let a = Assignment::random(4, &mut rng);
                assert_eq!(
                    evaluate_total(&g, &sys, &a, model).unwrap(),
                    evaluate_assignment(&g, &sys, &a, model).unwrap().total()
                );
            }
        }
        // Same error cases.
        assert!(evaluate_total(
            &g,
            &ring(5).unwrap(),
            &Assignment::identity(5),
            EvaluationModel::Precedence
        )
        .is_err());
        assert!(evaluate_total(
            &g,
            &sys,
            &Assignment::identity(5),
            EvaluationModel::Precedence
        )
        .is_err());
    }

    #[test]
    fn serialized_model_is_never_faster() {
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let a = Assignment::random(4, &mut rng);
            let p = evaluate_assignment(&g, &sys, &a, EvaluationModel::Precedence).unwrap();
            let s = evaluate_assignment(&g, &sys, &a, EvaluationModel::Serialized).unwrap();
            assert!(s.total() >= p.total());
        }
    }
}

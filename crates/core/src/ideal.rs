//! The *ideal graph* (§2.1, §4.1): the clustered problem graph scheduled
//! on the system graph closure, yielding the lower bound on total time.
//!
//! On the closure every pair of processors is one hop apart, so each
//! cross-cluster message costs exactly its clustered weight. The
//! resulting makespan can never be beaten by a real assignment
//! (Theorem 3) — it is the termination target of the refinement loop.
//! The *ideal edge* weight `i_edge[u][v] = i_start[v] − i_end[u]`
//! (always ≥ the clustered weight; the difference is slack created by
//! other dependencies) feeds the critical-edge analysis.

use serde::{Deserialize, Serialize};

use mimd_graph::Time;
use mimd_taskgraph::{ClusteredProblemGraph, TaskId};

use crate::schedule::Schedule;

/// The ideal schedule plus the derived ideal-edge weights.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdealSchedule {
    schedule: Schedule,
}

impl IdealSchedule {
    /// Derive the ideal graph of a clustered problem graph (§4.1
    /// algorithms I–III).
    pub fn derive(graph: &ClusteredProblemGraph) -> Self {
        let schedule = Schedule::precedence(graph, |u, v| graph.clus_weight(u, v));
        IdealSchedule { schedule }
    }

    /// The underlying schedule (the paper's `i_start` / `i_end`).
    #[inline]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The lower bound on any assignment's total time (§4.1 algorithm II:
    /// `lower_bound = i_end[l]` for the latest task `l`).
    #[inline]
    pub fn lower_bound(&self) -> Time {
        self.schedule.total()
    }

    /// Ideal edge weight `i_edge[u][v] = i_start[v] − i_end[u]` for an
    /// existing problem edge `u -> v`; the paper only defines it for
    /// clustered (cross-cluster) edges, but the same expression is the
    /// scheduling slack + weight for any edge.
    #[inline]
    pub fn ideal_edge(&self, u: TaskId, v: TaskId) -> Time {
        self.schedule.start(v) - self.schedule.end(u)
    }

    /// Slack of a clustered edge: how much its weight could grow before
    /// (possibly) delaying `v`. Zero slack = "tight". The paper's ec59
    /// example: slack 2.
    pub fn slack(&self, graph: &ClusteredProblemGraph, u: TaskId, v: TaskId) -> Time {
        self.ideal_edge(u, v) - graph.clus_weight(u, v)
    }

    /// The latest tasks (set `LS` seeding the critical-edge search).
    pub fn latest_tasks(&self) -> Vec<TaskId> {
        self.schedule.latest_tasks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_taskgraph::paper;

    #[test]
    fn worked_example_matches_fig22b() {
        let g = paper::worked_example();
        let ideal = IdealSchedule::derive(&g);
        assert_eq!(ideal.schedule().starts(), &paper::WORKED_IDEAL_START);
        assert_eq!(ideal.schedule().ends(), &paper::WORKED_IDEAL_END);
    }

    #[test]
    fn worked_example_lower_bound_is_14() {
        let g = paper::worked_example();
        assert_eq!(
            IdealSchedule::derive(&g).lower_bound(),
            paper::WORKED_LOWER_BOUND
        );
    }

    #[test]
    fn worked_example_latest_tasks_are_9_and_11() {
        let g = paper::worked_example();
        // Paper tasks 9 and 11 = 0-based 8 and 10.
        assert_eq!(IdealSchedule::derive(&g).latest_tasks(), vec![8, 10]);
    }

    #[test]
    fn ec59_has_slack_2() {
        // §2.1: "edge ei59 is not critical ... Only when the increase is
        // by more than 2, will the ideal graph edge be affected".
        let g = paper::worked_example();
        let ideal = IdealSchedule::derive(&g);
        assert_eq!(ideal.slack(&g, 4, 8), 2);
        assert_eq!(ideal.ideal_edge(4, 8), 3);
        assert_eq!(g.clus_weight(4, 8), 1);
    }

    #[test]
    fn ei79_is_tight() {
        // §3.6(c): "the edge i_edge[7][9] is critical, since task 9
        // terminates last and i_edge[7][9] = clus_edge[7][9]".
        let g = paper::worked_example();
        let ideal = IdealSchedule::derive(&g);
        assert_eq!(ideal.slack(&g, 6, 8), 0);
        assert_eq!(ideal.ideal_edge(6, 8), 2);
    }

    #[test]
    fn intra_cluster_edge_weight_0_in_ideal() {
        // Task 4 starts right when task 1 ends (same cluster, §4.1's
        // worked derivation: i_start[4] = i_end[1] + 0 = 1).
        let g = paper::worked_example();
        let ideal = IdealSchedule::derive(&g);
        assert_eq!(ideal.schedule().start(3), 1);
        assert_eq!(ideal.ideal_edge(0, 3), 0);
    }
}

//! Schedule validation: check that a [`Schedule`] is feasible for a
//! clustered problem graph under an assignment and model.
//!
//! The evaluator and the simulator both *construct* schedules; this
//! module lets tests, downstream users and cross-checks *verify* one
//! independently — every violation is reported with enough context to
//! debug (which task, which constraint, by how much).

use std::fmt;

use mimd_graph::Time;
use mimd_taskgraph::{ClusteredProblemGraph, TaskId};
use mimd_topology::SystemGraph;

use crate::assignment::Assignment;
use crate::schedule::{EvaluationModel, Schedule};

/// A single constraint violation found by [`validate_schedule`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A task's end time is not start + size.
    WrongDuration {
        /// The offending task.
        task: TaskId,
        /// Expected end (start + size).
        expected_end: Time,
        /// Recorded end.
        actual_end: Time,
    },
    /// A task starts before a predecessor's message can arrive.
    PrecedenceBroken {
        /// Producing task.
        from: TaskId,
        /// Consuming task.
        to: TaskId,
        /// Earliest legal start (pred end + communication).
        earliest: Time,
        /// Recorded start.
        actual: Time,
    },
    /// Two tasks overlap on one processor under the serialized model.
    ProcessorOverlap {
        /// The processor.
        processor: usize,
        /// First task.
        a: TaskId,
        /// Second task.
        b: TaskId,
    },
    /// The recorded total is not the maximum end time.
    WrongTotal {
        /// Expected (max end).
        expected: Time,
        /// Recorded total.
        actual: Time,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::WrongDuration {
                task,
                expected_end,
                actual_end,
            } => write!(
                f,
                "task {task}: end {actual_end} but start + size = {expected_end}"
            ),
            Violation::PrecedenceBroken {
                from,
                to,
                earliest,
                actual,
            } => write!(
                f,
                "edge ({from},{to}): task {to} starts at {actual}, earliest legal {earliest}"
            ),
            Violation::ProcessorOverlap { processor, a, b } => {
                write!(f, "processor {processor}: tasks {a} and {b} overlap")
            }
            Violation::WrongTotal { expected, actual } => {
                write!(f, "total {actual} but max end is {expected}")
            }
        }
    }
}

/// Validate `schedule` against the graph, assignment and model. Returns
/// every violation found (empty = feasible).
pub fn validate_schedule(
    graph: &ClusteredProblemGraph,
    system: &SystemGraph,
    assignment: &Assignment,
    schedule: &Schedule,
    model: EvaluationModel,
) -> Vec<Violation> {
    let problem = graph.problem();
    let n = problem.len();
    let mut violations = Vec::new();

    // Durations.
    for t in 0..n {
        let expected = schedule.start(t) + problem.size(t);
        if schedule.end(t) != expected {
            violations.push(Violation::WrongDuration {
                task: t,
                expected_end: expected,
                actual_end: schedule.end(t),
            });
        }
    }
    // Precedence + communication.
    for t in 0..n {
        for &(u, _) in problem.predecessors(t) {
            let w = graph.clus_weight(u, t);
            let comm = if w == 0 {
                0
            } else {
                let su = assignment.sys_of(graph.cluster_of(u));
                let sv = assignment.sys_of(graph.cluster_of(t));
                w * Time::from(system.hops(su, sv))
            };
            let earliest = schedule.end(u) + comm;
            if schedule.start(t) < earliest {
                violations.push(Violation::PrecedenceBroken {
                    from: u,
                    to: t,
                    earliest,
                    actual: schedule.start(t),
                });
            }
        }
    }
    // Exclusivity (serialized model only).
    if model == EvaluationModel::Serialized {
        let mut by_proc: Vec<Vec<TaskId>> = vec![Vec::new(); system.len()];
        for t in 0..n {
            by_proc[assignment.sys_of(graph.cluster_of(t))].push(t);
        }
        for (p, tasks) in by_proc.iter().enumerate() {
            let mut sorted = tasks.clone();
            sorted.sort_by_key(|&t| (schedule.start(t), t));
            for w in sorted.windows(2) {
                if schedule.start(w[1]) < schedule.end(w[0]) {
                    violations.push(Violation::ProcessorOverlap {
                        processor: p,
                        a: w[0],
                        b: w[1],
                    });
                }
            }
        }
    }
    // Total.
    let expected = (0..n).map(|t| schedule.end(t)).max().unwrap_or(0);
    if schedule.total() != expected {
        violations.push(Violation::WrongTotal {
            expected,
            actual: schedule.total(),
        });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate_assignment;
    use mimd_taskgraph::paper;
    use mimd_topology::ring;

    fn setup() -> (ClusteredProblemGraph, SystemGraph, Assignment) {
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        let a = Assignment::from_sys_of(paper::WORKED_OPTIMAL_ASSIGNMENT.to_vec()).unwrap();
        (g, sys, a)
    }

    #[test]
    fn evaluator_output_is_feasible() {
        let (g, sys, a) = setup();
        for model in [EvaluationModel::Precedence, EvaluationModel::Serialized] {
            let eval = evaluate_assignment(&g, &sys, &a, model).unwrap();
            let v = validate_schedule(&g, &sys, &a, &eval.schedule, model);
            assert!(v.is_empty(), "{model:?}: {v:?}");
        }
    }

    #[test]
    fn precedence_schedule_may_overlap_processors() {
        // The paper's model allows same-processor overlap; the validator
        // only flags it under the serialized model. The worked example's
        // optimal schedule has tasks 5 and 11 (cluster 1) overlapping?
        // Use a crafted case instead: two independent tasks, one cluster.
        use mimd_taskgraph::{Clustering, ProblemGraph};
        let p = ProblemGraph::from_paper_edges(&[5, 5, 1], &[(1, 3, 1), (2, 3, 1)]).unwrap();
        let c = Clustering::new(vec![0, 0, 1]).unwrap();
        let g = ClusteredProblemGraph::new(p, c).unwrap();
        let sys = mimd_topology::chain(2).unwrap();
        let a = Assignment::identity(2);
        let eval = evaluate_assignment(&g, &sys, &a, EvaluationModel::Precedence).unwrap();
        assert!(
            validate_schedule(&g, &sys, &a, &eval.schedule, EvaluationModel::Precedence).is_empty()
        );
        // The same schedule is NOT feasible under the serialized model.
        let v = validate_schedule(&g, &sys, &a, &eval.schedule, EvaluationModel::Serialized);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::ProcessorOverlap { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn detects_broken_precedence() {
        let (g, sys, a) = setup();
        // A schedule where everything starts at 0 breaks precedence.
        let broken = Schedule::precedence(&g, |_, _| 0);
        let v = validate_schedule(&g, &sys, &a, &broken, EvaluationModel::Precedence);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::PrecedenceBroken { .. })));
        // Display is informative.
        let msg = v[0].to_string();
        assert!(msg.contains("starts at") || msg.contains("end"));
    }

    #[test]
    fn violation_display_formats() {
        let samples = [
            Violation::WrongDuration {
                task: 1,
                expected_end: 5,
                actual_end: 4,
            },
            Violation::PrecedenceBroken {
                from: 0,
                to: 1,
                earliest: 7,
                actual: 6,
            },
            Violation::ProcessorOverlap {
                processor: 2,
                a: 3,
                b: 4,
            },
            Violation::WrongTotal {
                expected: 14,
                actual: 13,
            },
        ];
        for s in samples {
            assert!(!s.to_string().is_empty());
        }
    }
}

//! The greedy initial assignment (§4.3.2).
//!
//! "The basic idea ... is to map the critical edges to neighboring
//! system nodes or at least as close as possible." Three phases:
//!
//! 1. Seed: the cluster with the greatest *critical degree* goes on the
//!    processor with the greatest degree.
//! 2. Grow the critical subgraph: repeatedly take the unvisited cluster
//!    with the greatest critical degree that is critically adjacent to an
//!    already-placed cluster and put it on an unvisited processor
//!    adjacent to that cluster's host (preferring high degree); if no
//!    adjacent processor is free, the closest free one.
//! 3. Place the remaining clusters the same way, ranked by communication
//!    intensity (`mca`) and abstract adjacency.
//!
//! Ties break to the lowest id ("select any qualifying node
//! arbitrarily"); when the critical/abstract subgraph is disconnected and
//! no unvisited cluster neighbours a visited one, we fall back to the
//! best-ranked unvisited cluster seeded like step 1 (documented in
//! DESIGN.md §5). Clusters placed via steps 1 and 2(b) — i.e. whose
//! critical edges landed on single system links — are marked **critical
//! abstract nodes** (§2.1 term 5) and stay pinned during refinement.

use serde::{Deserialize, Serialize};

use mimd_graph::error::GraphError;
use mimd_taskgraph::{AbstractGraph, ClusterId, ClusteredProblemGraph};
use mimd_topology::SystemGraph;

use crate::assignment::Assignment;
use crate::critical::CriticalAnalysis;

/// An initial assignment plus the critical-abstract-node marks that the
/// refinement phase preserves.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InitialAssignment {
    /// The constructed placement.
    pub assignment: Assignment,
    /// `critical[a]` — cluster `a` was placed so that a critical abstract
    /// edge maps onto a single system edge; refinement must not move it.
    pub critical: Vec<bool>,
}

/// Run §4.3.2 on a clustered problem graph, its critical analysis and a
/// system graph. Requires `na == ns`.
pub fn initial_assignment(
    graph: &ClusteredProblemGraph,
    abstract_graph: &AbstractGraph,
    critical: &CriticalAnalysis,
    system: &SystemGraph,
) -> Result<InitialAssignment, GraphError> {
    let na = graph.num_clusters();
    if na != system.len() {
        return Err(GraphError::SizeMismatch {
            left: na,
            right: system.len(),
        });
    }

    let mut sys_of = vec![usize::MAX; na];
    let mut visited_abs = vec![false; na];
    let mut visited_sys = vec![false; na];
    let mut critical_mark = vec![false; na];

    // --- Step 1: seed. -------------------------------------------------
    let seed_sys = (0..na)
        .max_by_key(|&s| (system.degree(s), std::cmp::Reverse(s)))
        .expect("na >= 1");
    let seed_abs = (0..na)
        .max_by_key(|&a| (critical.critical_degree(a), std::cmp::Reverse(a)))
        .expect("na >= 1");
    sys_of[seed_abs] = seed_sys;
    visited_abs[seed_abs] = true;
    visited_sys[seed_sys] = true;
    critical_mark[seed_abs] = true;

    // Placement score used to resolve the paper's "select any qualifying
    // node arbitrarily" ties: the weighted distance from candidate
    // processor `s` to every already-placed cluster `va` communicates
    // with. Lower is better — it pulls the cluster toward its placed
    // communication partners without changing the algorithm's structure.
    let placement_score =
        |s: usize, va: ClusterId, sys_of: &[usize], visited_abs: &[bool]| -> u64 {
            let mut score = 0u64;
            for b in 0..na {
                if visited_abs[b] && sys_of[b] != usize::MAX {
                    let w = critical.critical_abstract_weight(va, b)
                        + abstract_graph.pair_weight(va, b);
                    if w > 0 {
                        score += w * u64::from(system.hops(s, sys_of[b]));
                    }
                }
            }
            score
        };
    // Helper: best unvisited system node adjacent to `host`: maximum
    // degree first (the paper's rule), then minimum placement score,
    // then lowest id.
    let adjacent_choice = |host: usize,
                           va: ClusterId,
                           visited_sys: &[bool],
                           sys_of: &[usize],
                           visited_abs: &[bool]|
     -> Option<usize> {
        system
            .graph()
            .neighbors(host)
            .iter()
            .copied()
            .filter(|&s| !visited_sys[s])
            .min_by_key(|&s| {
                (
                    std::cmp::Reverse(system.degree(s)),
                    placement_score(s, va, sys_of, visited_abs),
                    s,
                )
            })
    };
    // Helper: closest unvisited system node to `host` (step (c)), ties
    // by placement score then id.
    let closest_choice = |host: usize,
                          va: ClusterId,
                          visited_sys: &[bool],
                          sys_of: &[usize],
                          visited_abs: &[bool]|
     -> usize {
        (0..na)
            .filter(|&s| !visited_sys[s])
            .min_by_key(|&s| {
                (
                    system.hops(host, s),
                    placement_score(s, va, sys_of, visited_abs),
                    s,
                )
            })
            .expect("an unvisited processor exists while clusters remain")
    };

    // --- Step 2: grow along critical abstract edges. --------------------
    loop {
        // Candidate clusters: unvisited, with critical edges.
        let pending: Vec<ClusterId> = (0..na)
            .filter(|&a| !visited_abs[a] && critical.critical_degree(a) > 0)
            .collect();
        if pending.is_empty() {
            break;
        }
        // Prefer candidates critically adjacent to a visited cluster.
        let adjacent: Vec<ClusterId> = pending
            .iter()
            .copied()
            .filter(|&a| {
                (0..na).any(|b| visited_abs[b] && critical.is_critical_abstract_edge(a, b))
            })
            .collect();
        let (va, anchor) = if let Some(&va) = adjacent
            .iter()
            .max_by_key(|&&a| (critical.critical_degree(a), std::cmp::Reverse(a)))
        {
            // Anchor: the visited critical neighbor with the heaviest
            // shared critical abstract edge (tie: lowest id).
            let anchor = (0..na)
                .filter(|&b| visited_abs[b] && critical.is_critical_abstract_edge(va, b))
                .max_by_key(|&b| {
                    (
                        critical.critical_abstract_weight(va, b),
                        std::cmp::Reverse(b),
                    )
                })
                .expect("va was chosen for having a visited critical neighbor");
            (va, Some(anchor))
        } else {
            // Disconnected critical subgraph: restart like step 1.
            let va = pending
                .iter()
                .copied()
                .max_by_key(|&a| (critical.critical_degree(a), std::cmp::Reverse(a)))
                .expect("pending is non-empty");
            (va, None)
        };
        visited_abs[va] = true;
        match anchor {
            Some(anchor) => {
                let host = sys_of[anchor];
                if let Some(vs) = adjacent_choice(host, va, &visited_sys, &sys_of, &visited_abs) {
                    // (b): critical edge lands on a single system edge.
                    sys_of[va] = vs;
                    visited_sys[vs] = true;
                    critical_mark[va] = true;
                } else {
                    // (c): as close as possible; not marked critical.
                    let vs = closest_choice(host, va, &visited_sys, &sys_of, &visited_abs);
                    sys_of[va] = vs;
                    visited_sys[vs] = true;
                }
            }
            None => {
                let vs = (0..na)
                    .filter(|&s| !visited_sys[s])
                    .max_by_key(|&s| (system.degree(s), std::cmp::Reverse(s)))
                    .expect("an unvisited processor exists");
                sys_of[va] = vs;
                visited_sys[vs] = true;
                critical_mark[va] = true;
            }
        }
    }

    // --- Step 3: remaining clusters by communication intensity. ---------
    loop {
        let pending: Vec<ClusterId> = (0..na).filter(|&a| !visited_abs[a]).collect();
        if pending.is_empty() {
            break;
        }
        let adjacent: Vec<ClusterId> = pending
            .iter()
            .copied()
            .filter(|&a| abstract_graph.neighbors(a).iter().any(|&b| visited_abs[b]))
            .collect();
        let (va, anchor) = if let Some(&va) = adjacent
            .iter()
            .max_by_key(|&&a| (abstract_graph.mca(a), std::cmp::Reverse(a)))
        {
            let anchor = abstract_graph
                .neighbors(va)
                .iter()
                .copied()
                .filter(|&b| visited_abs[b])
                .max_by_key(|&b| (abstract_graph.pair_weight(va, b), std::cmp::Reverse(b)))
                .expect("va has a visited abstract neighbor");
            (va, Some(anchor))
        } else {
            let va = pending
                .iter()
                .copied()
                .max_by_key(|&a| (abstract_graph.mca(a), std::cmp::Reverse(a)))
                .expect("pending is non-empty");
            (va, None)
        };
        visited_abs[va] = true;
        let vs = match anchor {
            Some(anchor) => {
                let host = sys_of[anchor];
                adjacent_choice(host, va, &visited_sys, &sys_of, &visited_abs).unwrap_or_else(
                    || closest_choice(host, va, &visited_sys, &sys_of, &visited_abs),
                )
            }
            None => (0..na)
                .filter(|&s| !visited_sys[s])
                .max_by_key(|&s| (system.degree(s), std::cmp::Reverse(s)))
                .expect("an unvisited processor exists"),
        };
        sys_of[va] = vs;
        visited_sys[vs] = true;
    }

    let assignment = Assignment::from_sys_of(sys_of)?;
    Ok(InitialAssignment {
        assignment,
        critical: critical_mark,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical::CriticalityMode;
    use crate::evaluate::evaluate_assignment;
    use crate::ideal::IdealSchedule;
    use crate::schedule::EvaluationModel;
    use mimd_taskgraph::paper;
    use mimd_topology::{chain, ring, star};

    fn pipeline(
        graph: &ClusteredProblemGraph,
        system: &SystemGraph,
    ) -> (AbstractGraph, CriticalAnalysis, InitialAssignment) {
        let ideal = IdealSchedule::derive(graph);
        let crit = CriticalAnalysis::analyze(graph, &ideal, CriticalityMode::PaperExact);
        let abs = AbstractGraph::new(graph);
        let init = initial_assignment(graph, &abs, &crit, system).unwrap();
        (abs, crit, init)
    }

    #[test]
    fn worked_example_reaches_lower_bound_like_fig24() {
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        let (_, _, init) = pipeline(&g, &sys);
        let eval =
            evaluate_assignment(&g, &sys, &init.assignment, EvaluationModel::Precedence).unwrap();
        assert_eq!(
            eval.total(),
            paper::WORKED_LOWER_BOUND,
            "§4.3.4: the initial assignment is already optimal; no refinement needed"
        );
    }

    #[test]
    fn worked_example_marks_critical_clusters() {
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        let (_, crit, init) = pipeline(&g, &sys);
        // Clusters 0, 1, 2 carry critical edges and get placed adjacent
        // on the ring; cluster 3 has none.
        for a in crit.clusters_with_critical_edges() {
            assert!(init.critical[a], "cluster {a} should be pinned");
        }
        assert!(!init.critical[3]);
    }

    #[test]
    fn assignment_is_a_bijection() {
        let g = paper::worked_example();
        for sys in [ring(4).unwrap(), chain(4).unwrap(), star(4).unwrap()] {
            let (_, _, init) = pipeline(&g, &sys);
            let mut seen = [false; 4];
            for a in 0..4 {
                let s = init.assignment.sys_of(a);
                assert!(!seen[s], "processor {s} double-assigned on {}", sys.name());
                seen[s] = true;
            }
        }
    }

    #[test]
    fn critical_edges_land_adjacent_when_marked() {
        // Whenever two pinned clusters share a critical abstract edge and
        // both were placed via step 2(b)/1, their processors are adjacent
        // (that is what the mark certifies) — validate on the ring.
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        let (_, crit, init) = pipeline(&g, &sys);
        // Seed cluster 0 hosts the heaviest critical edges to 1 and 2.
        if init.critical[0] && init.critical[2] && crit.is_critical_abstract_edge(0, 2) {
            assert!(sys.adjacent(init.assignment.sys_of(0), init.assignment.sys_of(2)));
        }
        if init.critical[0] && init.critical[1] && crit.is_critical_abstract_edge(0, 1) {
            assert!(sys.adjacent(init.assignment.sys_of(0), init.assignment.sys_of(1)));
        }
    }

    #[test]
    fn size_mismatch_rejected() {
        let g = paper::worked_example();
        let sys = ring(5).unwrap();
        let ideal = IdealSchedule::derive(&g);
        let crit = CriticalAnalysis::analyze(&g, &ideal, CriticalityMode::PaperExact);
        let abs = AbstractGraph::new(&g);
        assert!(initial_assignment(&g, &abs, &crit, &sys).is_err());
    }

    #[test]
    fn works_with_no_critical_edges() {
        use mimd_taskgraph::{Clustering, ProblemGraph};
        // Star problem: 1 feeds 2,3,4 with slack-free... make them slack:
        // weights small so nothing is tight except one edge; then cluster
        // so no cross edge is tight. Simplest: no edges at all.
        let p = ProblemGraph::from_paper_edges(&[1, 2, 3], &[]).unwrap();
        let c = Clustering::new(vec![0, 1, 2]).unwrap();
        let g = ClusteredProblemGraph::new(p, c).unwrap();
        let sys = ring(3).unwrap();
        let (_, crit, init) = pipeline(&g, &sys);
        assert!(crit.critical_edges().is_empty());
        assert_eq!(init.assignment.len(), 3);
    }
}

//! Refinement with the lower-bound termination condition (§4.3.1,
//! §4.3.3).
//!
//! The paper keeps the *critical abstract nodes* pinned (their critical
//! edges already sit on single system links) and performs `ns` rounds of
//! randomly re-placing the non-critical clusters onto the processors not
//! occupied by pinned clusters, keeping any improvement. Crucially, the
//! loop stops the moment an evaluation equals the ideal-graph lower
//! bound — Theorem 3 guarantees optimality then, "reducing both search
//! space and mapping time".
//!
//! Candidates are priced by the incremental [`DeltaEvaluator`] (stage →
//! commit/discard), so each one costs only its disturbed scheduling
//! cone instead of a from-scratch evaluation — totals are bit-identical
//! to [`evaluate_assignment`](crate::evaluate_assignment) by the delta
//! evaluator's contract, so seeded results match the historic loop
//! exactly. On top of the paper's random rounds, an **opt-in**
//! gain-guided pairwise-exchange pass ([`RefineConfig::exchange_pool`],
//! default off) ranks swap candidates by a [`GainTable`] proxy and
//! accepts them against the exact delta totals; it draws nothing from
//! the RNG, so enabling it never shifts the random stream.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mimd_graph::error::GraphError;
use mimd_graph::Time;
use mimd_taskgraph::ClusteredProblemGraph;
use mimd_telemetry::Recorder;
use mimd_topology::SystemGraph;

use crate::assignment::Assignment;
use crate::delta::{DeltaEvaluator, DeltaWorkspace};
use crate::gain::GainTable;
use crate::schedule::EvaluationModel;
use crate::shuffle::fisher_yates;

/// Refinement parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RefineConfig {
    /// Number of random re-placements. The paper fixes this to `ns`
    /// ("a total of ns changes are allowed"); [`RefineConfig::paper`]
    /// does that, other budgets support the ablations.
    pub iterations: usize,
    /// The evaluation model (paper: precedence).
    pub model: EvaluationModel,
    /// When `false` (ablation A5 variant), ignore the critical pins and
    /// re-place *every* cluster each round.
    pub respect_pins: bool,
    /// Budget of gain-ranked pairwise-exchange evaluations run after
    /// the random rounds (0 = off — the default and the paper's exact
    /// behaviour). The pass is deterministic and RNG-free: swap
    /// candidates are ranked by the [`GainTable`] comm-volume proxy and
    /// accepted first-improvement against exact delta totals, repeating
    /// from each accepted move until the budget is spent or no swap
    /// improves. Evaluations count into
    /// [`RefineOutcome::iterations_used`].
    #[serde(default)]
    pub exchange_pool: usize,
}

impl RefineConfig {
    /// The paper's configuration for an `ns`-processor system.
    pub fn paper(ns: usize) -> Self {
        RefineConfig {
            iterations: ns,
            model: EvaluationModel::Precedence,
            respect_pins: true,
            exchange_pool: 0,
        }
    }
}

/// What refinement did and why it stopped.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefineOutcome {
    /// The best assignment found.
    pub assignment: Assignment,
    /// Its total time.
    pub total: Time,
    /// Total time of the starting assignment.
    pub initial_total: Time,
    /// Candidates actually evaluated (random re-placements plus
    /// exchange-pass swaps; ≤ the configured budgets).
    pub iterations_used: usize,
    /// Number of evaluations that improved the incumbent.
    pub improvements: usize,
    /// `true` iff the lower-bound termination condition fired — the
    /// result is provably optimal (Theorem 3).
    pub reached_lower_bound: bool,
}

/// Refine `start` (with per-cluster pin flags from the initial
/// assignment) toward `lower_bound`.
///
/// Convenience wrapper over [`refine_with`] with a throwaway workspace
/// and no telemetry; loops calling refinement repeatedly should hold a
/// [`DeltaWorkspace`] and use [`refine_with`] directly.
pub fn refine(
    graph: &ClusteredProblemGraph,
    system: &SystemGraph,
    start: &Assignment,
    pinned: &[bool],
    lower_bound: Time,
    config: &RefineConfig,
    rng: &mut impl Rng,
) -> Result<RefineOutcome, GraphError> {
    let mut ws = DeltaWorkspace::new();
    refine_with(
        graph,
        system,
        start,
        pinned,
        lower_bound,
        config,
        &Recorder::disabled(),
        &mut ws,
        rng,
    )
}

/// [`refine`] with a caller-owned [`DeltaWorkspace`] (reused across
/// calls — zero allocation per candidate) and a telemetry recorder:
/// candidate evaluations land on the `refine.candidates` counter and
/// accepted improvements on `refine.accepted`, batched once per pass.
/// When the recorder carries a gain ledger, the run opens with a
/// baseline entry and every accepted candidate lands as a `flat.random`
/// / `flat.exchange` entry (or the recorder's gain scope), so summed
/// gains telescope to `initial_total - total` exactly.
#[allow(clippy::too_many_arguments)]
pub fn refine_with(
    graph: &ClusteredProblemGraph,
    system: &SystemGraph,
    start: &Assignment,
    pinned: &[bool],
    lower_bound: Time,
    config: &RefineConfig,
    recorder: &Recorder,
    ws: &mut DeltaWorkspace,
    rng: &mut impl Rng,
) -> Result<RefineOutcome, GraphError> {
    let outcome = refine_inner(
        graph,
        system,
        start,
        pinned,
        lower_bound,
        config,
        recorder,
        ws,
        rng,
    )?;
    if outcome.iterations_used > 0 {
        recorder.add("refine.candidates", outcome.iterations_used as u64);
    }
    if outcome.improvements > 0 {
        recorder.add("refine.accepted", outcome.improvements as u64);
    }
    Ok(outcome)
}

#[allow(clippy::too_many_arguments)]
fn refine_inner(
    graph: &ClusteredProblemGraph,
    system: &SystemGraph,
    start: &Assignment,
    pinned: &[bool],
    lower_bound: Time,
    config: &RefineConfig,
    recorder: &Recorder,
    ws: &mut DeltaWorkspace,
    rng: &mut impl Rng,
) -> Result<RefineOutcome, GraphError> {
    let na = graph.num_clusters();
    if start.len() != na || pinned.len() != na {
        return Err(GraphError::SizeMismatch {
            left: start.len(),
            right: na,
        });
    }
    let mut evaluator = DeltaEvaluator::attach(ws, graph, system, config.model, start)?;
    let mut best_total = evaluator.total();
    let initial_total = best_total;
    let mut improvements = 0;
    let mut iterations_used = 0;
    recorder.gain_run_start("flat.random", initial_total);

    if best_total == lower_bound {
        return Ok(RefineOutcome {
            assignment: start.clone(),
            total: best_total,
            initial_total,
            iterations_used,
            improvements,
            reached_lower_bound: true,
        });
    }

    // The movable clusters and the processors they may occupy.
    let movable: Vec<usize> = (0..na)
        .filter(|&a| !(config.respect_pins && pinned[a]))
        .collect();
    let free_sys: Vec<usize> = movable.iter().map(|&a| start.sys_of(a)).collect();
    if movable.len() <= 1 {
        // Nothing to permute: the initial assignment stands.
        return Ok(RefineOutcome {
            assignment: start.clone(),
            total: best_total,
            initial_total,
            iterations_used,
            improvements,
            reached_lower_bound: false,
        });
    }

    let mut perm: Vec<usize> = (0..movable.len()).collect();
    for _ in 0..config.iterations {
        iterations_used += 1;
        // Fresh random permutation of the movable clusters.
        fisher_yates(&mut perm, rng);
        let total = evaluator.stage_place(&movable, &free_sys, &perm);
        if total == lower_bound {
            evaluator.commit();
            recorder.gain("flat.random", best_total as i64 - total as i64, total);
            return Ok(RefineOutcome {
                assignment: evaluator.assignment().clone(),
                total,
                initial_total,
                iterations_used,
                improvements: improvements + 1,
                reached_lower_bound: true,
            });
        }
        if total < best_total {
            evaluator.commit();
            recorder.gain("flat.random", best_total as i64 - total as i64, total);
            best_total = total;
            improvements += 1;
        } else {
            evaluator.discard();
        }
    }

    let mut reached_lower_bound = false;
    if config.exchange_pool > 0 {
        reached_lower_bound = exchange_pass(
            graph,
            system,
            &mut evaluator,
            pinned,
            config,
            lower_bound,
            recorder,
            &mut best_total,
            &mut iterations_used,
            &mut improvements,
        );
    }

    Ok(RefineOutcome {
        assignment: evaluator.assignment().clone(),
        total: best_total,
        initial_total,
        iterations_used,
        improvements,
        reached_lower_bound,
    })
}

/// The gain-guided exchange pass: rank candidate swaps by the
/// [`GainTable`] proxy, evaluate them exactly via the delta evaluator,
/// accept first-improvement and re-rank from the new incumbent until
/// the budget is spent or no ranked swap improves. RNG-free. Returns
/// `true` iff the lower bound was reached.
#[allow(clippy::too_many_arguments)]
fn exchange_pass(
    graph: &ClusteredProblemGraph,
    system: &SystemGraph,
    evaluator: &mut DeltaEvaluator<'_, '_>,
    pinned: &[bool],
    config: &RefineConfig,
    lower_bound: Time,
    recorder: &Recorder,
    best_total: &mut Time,
    iterations_used: &mut usize,
    improvements: &mut usize,
) -> bool {
    let all_free = vec![false; pinned.len()];
    let effective_pins: &[bool] = if config.respect_pins {
        pinned
    } else {
        &all_free
    };
    let mut table = GainTable::new(graph, system, evaluator.assignment(), effective_pins);
    let mut budget = config.exchange_pool;
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut ranked: Vec<(i64, usize, usize)> = Vec::new();
    while budget > 0 {
        collect_swap_pairs(&table, evaluator.assignment(), system, &mut pairs);
        ranked.clear();
        ranked.extend(
            pairs
                .iter()
                .map(|&(a, b)| (table.swap_gain(a, b, evaluator.assignment(), system), a, b)),
        );
        // Best proxy gain first; ties by cluster ids for determinism.
        ranked.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
        let mut accepted = false;
        for &(_, a, b) in &ranked {
            if budget == 0 {
                break;
            }
            budget -= 1;
            *iterations_used += 1;
            let total = evaluator.stage_swap(a, b);
            if total < *best_total {
                evaluator.commit();
                table.apply_swap(a, b, evaluator.assignment(), system);
                recorder.gain("flat.exchange", *best_total as i64 - total as i64, total);
                *best_total = total;
                *improvements += 1;
                accepted = true;
                if total == lower_bound {
                    return true;
                }
                break; // re-rank from the new incumbent
            }
            evaluator.discard();
        }
        if !accepted {
            break;
        }
    }
    false
}

/// Deterministically enumerate candidate swap pairs: movable
/// abstract-graph-adjacent pairs seeded from the boundary set, plus —
/// for each boundary cluster `a` with a neighbor `x` further than one
/// hop — the movable clusters hosted on processors physically adjacent
/// to `x`'s host (the "move `a` next to its expensive neighbor" moves).
fn collect_swap_pairs(
    table: &GainTable,
    assignment: &Assignment,
    system: &SystemGraph,
    out: &mut Vec<(usize, usize)>,
) {
    out.clear();
    let push = |out: &mut Vec<(usize, usize)>, a: usize, b: usize| {
        out.push((a.min(b), a.max(b)));
    };
    for a in table.boundary().iter() {
        let sa = assignment.sys_of(a);
        for &(x, _) in table.neighbors(a) {
            if table.movable().contains(x) {
                push(out, a, x);
            }
            let sx = assignment.sys_of(x);
            if system.hops(sa, sx) > 1 {
                for &p in system.graph().neighbors(sx) {
                    let b = assignment.cluster_of(p);
                    if b != a && table.movable().contains(b) {
                        push(out, a, b);
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate_assignment;
    use mimd_taskgraph::paper;
    use mimd_topology::ring;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn worked() -> (ClusteredProblemGraph, SystemGraph) {
        (paper::worked_example(), ring(4).unwrap())
    }

    #[test]
    fn stops_immediately_at_lower_bound() {
        let (g, sys) = worked();
        let opt = Assignment::from_sys_of(paper::WORKED_OPTIMAL_ASSIGNMENT.to_vec()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let out = refine(
            &g,
            &sys,
            &opt,
            &[false; 4],
            paper::WORKED_LOWER_BOUND,
            &RefineConfig::paper(4),
            &mut rng,
        )
        .unwrap();
        assert!(out.reached_lower_bound);
        assert_eq!(
            out.iterations_used, 0,
            "termination before any random change"
        );
        assert_eq!(out.total, 14);
    }

    #[test]
    fn improves_or_keeps_a_bad_start() {
        let (g, sys) = worked();
        // Deliberately poor start: reverse placement.
        let bad = Assignment::from_sys_of(vec![3, 2, 1, 0]).unwrap();
        let bad_total = evaluate_assignment(&g, &sys, &bad, EvaluationModel::Precedence)
            .unwrap()
            .total();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = RefineConfig {
            iterations: 50,
            ..RefineConfig::paper(4)
        };
        let out = refine(&g, &sys, &bad, &[false; 4], 14, &cfg, &mut rng).unwrap();
        assert!(out.total <= bad_total);
        assert_eq!(out.initial_total, bad_total);
        // With all 4 clusters movable and 50 tries over 24 permutations,
        // the optimum (14) is found with overwhelming probability.
        assert!(out.reached_lower_bound, "found total {}", out.total);
    }

    #[test]
    fn pinned_clusters_never_move() {
        let (g, sys) = worked();
        let start = Assignment::identity(4);
        let pinned = [true, false, true, false];
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = RefineConfig {
            iterations: 30,
            ..RefineConfig::paper(4)
        };
        let out = refine(&g, &sys, &start, &pinned, 0, &cfg, &mut rng).unwrap();
        assert_eq!(out.assignment.sys_of(0), start.sys_of(0));
        assert_eq!(out.assignment.sys_of(2), start.sys_of(2));
    }

    #[test]
    fn respect_pins_false_moves_everything() {
        let (g, sys) = worked();
        let start = Assignment::identity(4);
        let pinned = [true; 4];
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = RefineConfig {
            iterations: 50,
            respect_pins: false,
            model: EvaluationModel::Precedence,
            exchange_pool: 0,
        };
        let out = refine(&g, &sys, &start, &pinned, 14, &cfg, &mut rng).unwrap();
        assert!(
            out.reached_lower_bound,
            "full shuffle should find the optimum"
        );
    }

    #[test]
    fn all_pinned_is_a_noop() {
        let (g, sys) = worked();
        let start = Assignment::identity(4);
        let mut rng = StdRng::seed_from_u64(4);
        let out = refine(
            &g,
            &sys,
            &start,
            &[true; 4],
            0,
            &RefineConfig::paper(4),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.iterations_used, 0);
        assert_eq!(out.assignment, start);
    }

    #[test]
    fn size_mismatch_rejected() {
        let (g, sys) = worked();
        let start = Assignment::identity(4);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(refine(
            &g,
            &sys,
            &start,
            &[true; 3],
            0,
            &RefineConfig::paper(4),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn never_worse_than_start() {
        let (g, sys) = worked();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let start = Assignment::random(4, &mut rng);
            let t0 = evaluate_assignment(&g, &sys, &start, EvaluationModel::Precedence)
                .unwrap()
                .total();
            let out = refine(
                &g,
                &sys,
                &start,
                &[false; 4],
                14,
                &RefineConfig::paper(4),
                &mut rng,
            )
            .unwrap();
            assert!(out.total <= t0);
        }
    }

    #[test]
    fn exchange_pool_zero_leaves_the_rng_and_result_unchanged() {
        let (g, sys) = worked();
        let bad = Assignment::from_sys_of(vec![3, 2, 1, 0]).unwrap();
        let run = |pool: usize| {
            let mut rng = StdRng::seed_from_u64(13);
            let cfg = RefineConfig {
                iterations: 3,
                exchange_pool: pool,
                ..RefineConfig::paper(4)
            };
            let out = refine(&g, &sys, &bad, &[false; 4], 0, &cfg, &mut rng).unwrap();
            (out, rng.gen_range(0..u64::MAX))
        };
        let (base, stream_base) = run(0);
        let (pooled, stream_pooled) = run(16);
        // The exchange pass draws nothing from the RNG...
        assert_eq!(stream_base, stream_pooled);
        // ...and only ever improves on the random rounds' result.
        assert!(pooled.total <= base.total);
        assert!(pooled.iterations_used >= base.iterations_used);
    }

    #[test]
    fn exchange_pass_finds_the_worked_optimum_without_randomness() {
        let (g, sys) = worked();
        let bad = Assignment::from_sys_of(vec![3, 2, 1, 0]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = RefineConfig {
            iterations: 0,
            exchange_pool: 64,
            ..RefineConfig::paper(4)
        };
        let out = refine(&g, &sys, &bad, &[false; 4], 14, &cfg, &mut rng).unwrap();
        // Pure exchange descent from the reversed placement reaches a
        // strictly better total (the worked ring is swap-connected).
        assert!(out.total < out.initial_total);
        assert!(out.improvements >= 1);
    }

    #[test]
    fn refine_with_records_counters() {
        let (g, sys) = worked();
        let bad = Assignment::from_sys_of(vec![3, 2, 1, 0]).unwrap();
        let recorder = Recorder::enabled();
        let mut ws = DeltaWorkspace::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = RefineConfig {
            iterations: 50,
            ..RefineConfig::paper(4)
        };
        let out = refine_with(
            &g,
            &sys,
            &bad,
            &[false; 4],
            14,
            &cfg,
            &recorder,
            &mut ws,
            &mut rng,
        )
        .unwrap();
        let snapshot = recorder.snapshot();
        assert_eq!(
            snapshot.counter("refine.candidates"),
            out.iterations_used as u64
        );
        assert_eq!(snapshot.counter("refine.accepted"), out.improvements as u64);
    }

    #[test]
    fn gain_ledger_telescopes_to_the_makespan_delta() {
        use mimd_telemetry::{split_runs, GainKind, GainLedger};
        let (g, sys) = worked();
        let bad = Assignment::from_sys_of(vec![3, 2, 1, 0]).unwrap();
        let recorder = Recorder::enabled().with_ledger(GainLedger::enabled());
        let mut ws = DeltaWorkspace::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = RefineConfig {
            iterations: 50,
            exchange_pool: 16,
            ..RefineConfig::paper(4)
        };
        let out = refine_with(
            &g,
            &sys,
            &bad,
            &[false; 4],
            14,
            &cfg,
            &recorder,
            &mut ws,
            &mut rng,
        )
        .unwrap();
        let entries = recorder.ledger().snapshot();
        assert_eq!(entries[0].kind, GainKind::Baseline);
        assert_eq!(entries[0].total_after, out.initial_total);
        assert_eq!(entries.len(), out.improvements + 1);
        let runs = split_runs(&entries);
        assert_eq!(runs.len(), 1);
        let summed: i64 = entries.iter().map(|e| e.gain).sum();
        assert_eq!(summed, out.initial_total as i64 - out.total as i64);
        assert_eq!(entries.last().unwrap().total_after, out.total);
    }

    #[test]
    fn refine_with_matches_refine_byte_for_byte() {
        let (g, sys) = worked();
        let bad = Assignment::from_sys_of(vec![2, 3, 0, 1]).unwrap();
        let cfg = RefineConfig {
            iterations: 25,
            ..RefineConfig::paper(4)
        };
        let mut rng_a = StdRng::seed_from_u64(8);
        let plain = refine(&g, &sys, &bad, &[false; 4], 0, &cfg, &mut rng_a).unwrap();
        let mut rng_b = StdRng::seed_from_u64(8);
        let mut ws = DeltaWorkspace::new();
        let with = refine_with(
            &g,
            &sys,
            &bad,
            &[false; 4],
            0,
            &cfg,
            &Recorder::enabled(),
            &mut ws,
            &mut rng_b,
        )
        .unwrap();
        assert_eq!(plain, with);
    }
}

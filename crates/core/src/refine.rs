//! Refinement with the lower-bound termination condition (§4.3.1,
//! §4.3.3).
//!
//! The paper keeps the *critical abstract nodes* pinned (their critical
//! edges already sit on single system links) and performs `ns` rounds of
//! randomly re-placing the non-critical clusters onto the processors not
//! occupied by pinned clusters, keeping any improvement. Crucially, the
//! loop stops the moment an evaluation equals the ideal-graph lower
//! bound — Theorem 3 guarantees optimality then, "reducing both search
//! space and mapping time".

use rand::Rng;
use serde::{Deserialize, Serialize};

use mimd_graph::error::GraphError;
use mimd_graph::Time;
use mimd_taskgraph::ClusteredProblemGraph;
use mimd_topology::SystemGraph;

use crate::assignment::Assignment;
use crate::evaluate::evaluate_assignment;
use crate::schedule::EvaluationModel;

/// Refinement parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RefineConfig {
    /// Number of random re-placements. The paper fixes this to `ns`
    /// ("a total of ns changes are allowed"); [`RefineConfig::paper`]
    /// does that, other budgets support the ablations.
    pub iterations: usize,
    /// The evaluation model (paper: precedence).
    pub model: EvaluationModel,
    /// When `false` (ablation A5 variant), ignore the critical pins and
    /// re-place *every* cluster each round.
    pub respect_pins: bool,
}

impl RefineConfig {
    /// The paper's configuration for an `ns`-processor system.
    pub fn paper(ns: usize) -> Self {
        RefineConfig {
            iterations: ns,
            model: EvaluationModel::Precedence,
            respect_pins: true,
        }
    }
}

/// What refinement did and why it stopped.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefineOutcome {
    /// The best assignment found.
    pub assignment: Assignment,
    /// Its total time.
    pub total: Time,
    /// Total time of the starting assignment.
    pub initial_total: Time,
    /// Random re-placements actually evaluated (≤ configured budget).
    pub iterations_used: usize,
    /// Number of iterations that improved the incumbent.
    pub improvements: usize,
    /// `true` iff the lower-bound termination condition fired — the
    /// result is provably optimal (Theorem 3).
    pub reached_lower_bound: bool,
}

/// Refine `start` (with per-cluster pin flags from the initial
/// assignment) toward `lower_bound`.
pub fn refine(
    graph: &ClusteredProblemGraph,
    system: &SystemGraph,
    start: &Assignment,
    pinned: &[bool],
    lower_bound: Time,
    config: &RefineConfig,
    rng: &mut impl Rng,
) -> Result<RefineOutcome, GraphError> {
    let na = graph.num_clusters();
    if start.len() != na || pinned.len() != na {
        return Err(GraphError::SizeMismatch {
            left: start.len(),
            right: na,
        });
    }
    let mut best = start.clone();
    let mut best_total = evaluate_assignment(graph, system, &best, config.model)?.total();
    let initial_total = best_total;
    let mut improvements = 0;
    let mut iterations_used = 0;

    if best_total == lower_bound {
        return Ok(RefineOutcome {
            assignment: best,
            total: best_total,
            initial_total,
            iterations_used,
            improvements,
            reached_lower_bound: true,
        });
    }

    // The movable clusters and the processors they may occupy.
    let movable: Vec<usize> = (0..na)
        .filter(|&a| !(config.respect_pins && pinned[a]))
        .collect();
    let free_sys: Vec<usize> = movable.iter().map(|&a| start.sys_of(a)).collect();
    if movable.len() <= 1 {
        // Nothing to permute: the initial assignment stands.
        return Ok(RefineOutcome {
            assignment: best,
            total: best_total,
            initial_total,
            iterations_used,
            improvements,
            reached_lower_bound: false,
        });
    }

    let mut perm: Vec<usize> = (0..movable.len()).collect();
    let mut candidate = best.clone();
    for _ in 0..config.iterations {
        iterations_used += 1;
        // Fresh random permutation of the movable clusters.
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        candidate.clone_from(&best);
        candidate.place_subset(&movable, &free_sys, &perm);
        let total = evaluate_assignment(graph, system, &candidate, config.model)?.total();
        if total == lower_bound {
            return Ok(RefineOutcome {
                assignment: candidate,
                total,
                initial_total,
                iterations_used,
                improvements: improvements + 1,
                reached_lower_bound: true,
            });
        }
        if total < best_total {
            best.clone_from(&candidate);
            best_total = total;
            improvements += 1;
        }
    }

    Ok(RefineOutcome {
        assignment: best,
        total: best_total,
        initial_total,
        iterations_used,
        improvements,
        reached_lower_bound: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_taskgraph::paper;
    use mimd_topology::ring;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn worked() -> (ClusteredProblemGraph, SystemGraph) {
        (paper::worked_example(), ring(4).unwrap())
    }

    #[test]
    fn stops_immediately_at_lower_bound() {
        let (g, sys) = worked();
        let opt = Assignment::from_sys_of(paper::WORKED_OPTIMAL_ASSIGNMENT.to_vec()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let out = refine(
            &g,
            &sys,
            &opt,
            &[false; 4],
            paper::WORKED_LOWER_BOUND,
            &RefineConfig::paper(4),
            &mut rng,
        )
        .unwrap();
        assert!(out.reached_lower_bound);
        assert_eq!(
            out.iterations_used, 0,
            "termination before any random change"
        );
        assert_eq!(out.total, 14);
    }

    #[test]
    fn improves_or_keeps_a_bad_start() {
        let (g, sys) = worked();
        // Deliberately poor start: reverse placement.
        let bad = Assignment::from_sys_of(vec![3, 2, 1, 0]).unwrap();
        let bad_total = evaluate_assignment(&g, &sys, &bad, EvaluationModel::Precedence)
            .unwrap()
            .total();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = RefineConfig {
            iterations: 50,
            ..RefineConfig::paper(4)
        };
        let out = refine(&g, &sys, &bad, &[false; 4], 14, &cfg, &mut rng).unwrap();
        assert!(out.total <= bad_total);
        assert_eq!(out.initial_total, bad_total);
        // With all 4 clusters movable and 50 tries over 24 permutations,
        // the optimum (14) is found with overwhelming probability.
        assert!(out.reached_lower_bound, "found total {}", out.total);
    }

    #[test]
    fn pinned_clusters_never_move() {
        let (g, sys) = worked();
        let start = Assignment::identity(4);
        let pinned = [true, false, true, false];
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = RefineConfig {
            iterations: 30,
            ..RefineConfig::paper(4)
        };
        let out = refine(&g, &sys, &start, &pinned, 0, &cfg, &mut rng).unwrap();
        assert_eq!(out.assignment.sys_of(0), start.sys_of(0));
        assert_eq!(out.assignment.sys_of(2), start.sys_of(2));
    }

    #[test]
    fn respect_pins_false_moves_everything() {
        let (g, sys) = worked();
        let start = Assignment::identity(4);
        let pinned = [true; 4];
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = RefineConfig {
            iterations: 50,
            respect_pins: false,
            model: EvaluationModel::Precedence,
        };
        let out = refine(&g, &sys, &start, &pinned, 14, &cfg, &mut rng).unwrap();
        assert!(
            out.reached_lower_bound,
            "full shuffle should find the optimum"
        );
    }

    #[test]
    fn all_pinned_is_a_noop() {
        let (g, sys) = worked();
        let start = Assignment::identity(4);
        let mut rng = StdRng::seed_from_u64(4);
        let out = refine(
            &g,
            &sys,
            &start,
            &[true; 4],
            0,
            &RefineConfig::paper(4),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.iterations_used, 0);
        assert_eq!(out.assignment, start);
    }

    #[test]
    fn size_mismatch_rejected() {
        let (g, sys) = worked();
        let start = Assignment::identity(4);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(refine(
            &g,
            &sys,
            &start,
            &[true; 3],
            0,
            &RefineConfig::paper(4),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn never_worse_than_start() {
        let (g, sys) = worked();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let start = Assignment::random(4, &mut rng);
            let t0 = evaluate_assignment(&g, &sys, &start, EvaluationModel::Precedence)
                .unwrap()
                .total();
            let out = refine(
                &g,
                &sys,
                &start,
                &[false; 4],
                14,
                &RefineConfig::paper(4),
                &mut rng,
            )
            .unwrap();
            assert!(out.total <= t0);
        }
    }
}

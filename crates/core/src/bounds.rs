//! Lower bounds beyond the paper's ideal graph.
//!
//! The paper's only bound is the closure (ideal-graph) makespan, which
//! is exact for the precedence model on a complete machine. Under the
//! *serialized* model two more classical bounds apply and can exceed it:
//!
//! * the **work bound** `⌈Σ task_size / ns⌉` — ns processors cannot do
//!   W units of work faster than W/ns;
//! * the **zero-comm critical path** — even infinite processors cannot
//!   beat the dependency chain.
//!
//! [`serialized_lower_bound`] combines all three; the experiment
//! binaries use it when reporting percentages for the serialized model
//! so the denominators stay honest.

use mimd_graph::Time;
use mimd_taskgraph::ClusteredProblemGraph;

use crate::ideal::IdealSchedule;
use crate::schedule::Schedule;

/// `⌈Σ task_size / ns⌉`: the machine-capacity bound (serialized model).
pub fn work_lower_bound(graph: &ClusteredProblemGraph, ns: usize) -> Time {
    let work: Time = graph.problem().sizes().iter().sum();
    work.div_ceil(ns as Time)
}

/// The dependency-only bound: makespan with all communication free.
pub fn zero_comm_critical_path(graph: &ClusteredProblemGraph) -> Time {
    Schedule::precedence(graph, |_, _| 0).total()
}

/// The tightest combination valid for the serialized model:
/// `max(ideal bound, work bound, zero-comm critical path)`.
pub fn serialized_lower_bound(graph: &ClusteredProblemGraph, ns: usize) -> Time {
    let ideal = IdealSchedule::derive(graph).lower_bound();
    ideal
        .max(work_lower_bound(graph, ns))
        .max(zero_comm_critical_path(graph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate_assignment;
    use crate::schedule::EvaluationModel;
    use crate::Assignment;
    use mimd_taskgraph::clustering::random::random_clustering;
    use mimd_taskgraph::paper;
    use mimd_taskgraph::{GeneratorConfig, LayeredDagGenerator};
    use mimd_topology::ring;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn work_bound_is_ceiling_division() {
        let g = paper::worked_example();
        // Total work = 22 time units over 4 processors -> ceil = 6.
        let work: u64 = g.problem().sizes().iter().sum();
        assert_eq!(work, 22);
        assert_eq!(work_lower_bound(&g, 4), 6);
        assert_eq!(work_lower_bound(&g, 3), 8);
    }

    #[test]
    fn zero_comm_path_ignores_weights() {
        let g = paper::worked_example();
        // Chain 1(1) -> 3(2) -> 7(3) -> 9/11 dominates; with zero comm
        // the makespan shrinks below the ideal bound of 14.
        let z = zero_comm_critical_path(&g);
        assert!(z <= 14);
        assert!(z >= 8, "the dependency chain alone takes time, got {z}");
    }

    #[test]
    fn serialized_bound_dominates_ideal() {
        let g = paper::worked_example();
        let lb = serialized_lower_bound(&g, 4);
        assert!(lb >= IdealSchedule::derive(&g).lower_bound().min(lb));
        assert!(lb >= work_lower_bound(&g, 4));
    }

    #[test]
    fn serialized_schedules_respect_the_combined_bound() {
        let gen = LayeredDagGenerator::new(GeneratorConfig {
            tasks: 40,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let sys = ring(5).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let p = gen.generate(&mut rng);
            let c = random_clustering(&p, 5, &mut rng).unwrap();
            let g = ClusteredProblemGraph::new(p, c).unwrap();
            let lb = serialized_lower_bound(&g, 5);
            let a = Assignment::random(5, &mut rng);
            let eval = evaluate_assignment(&g, &sys, &a, EvaluationModel::Serialized).unwrap();
            assert!(
                eval.total() >= lb,
                "serialized total {} below combined bound {lb}",
                eval.total()
            );
        }
    }
}

//! Schedule derivation: start/end times of every task given a
//! communication-cost function.
//!
//! This is the paper's §4.1 algorithm ("derive start and end time of each
//! task") factored out so the *ideal graph* (communication = clustered
//! weight) and *assignment evaluation* (communication = clustered weight
//! × hop count, §4.3.4) share one implementation. Predecessors are taken
//! from the **problem graph** while weights come from the **clustered**
//! view — the subtlety the paper demonstrates with task 4 (§4.1).

use serde::{Deserialize, Serialize};

use mimd_graph::Time;
use mimd_taskgraph::{ClusteredProblemGraph, TaskId};

/// Which execution model the schedule uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvaluationModel {
    /// The paper's model: a task starts as soon as every predecessor has
    /// finished and its message has arrived. Tasks sharing a processor
    /// may overlap; only precedence and communication constrain starts.
    Precedence,
    /// Extension (ablation A3): additionally, each processor executes at
    /// most one task at a time (greedy list scheduling, earliest-startable
    /// first, ties by task id).
    Serialized,
}

/// Start/end times for every task plus the makespan (the paper's *total
/// time*).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    start: Vec<Time>,
    end: Vec<Time>,
    total: Time,
}

impl Schedule {
    /// Compute a precedence-model schedule. `comm(u, v)` must return the
    /// communication delay charged on edge `u -> v` (already multiplied
    /// by hops if applicable; 0 for intra-cluster edges).
    pub fn precedence<F>(graph: &ClusteredProblemGraph, mut comm: F) -> Self
    where
        F: FnMut(TaskId, TaskId) -> Time,
    {
        let problem = graph.problem();
        let n = problem.len();
        let mut start = vec![0 as Time; n];
        let mut end = vec![0 as Time; n];
        for &t in problem.topo_order() {
            let s = problem
                .predecessors(t)
                .iter()
                .map(|&(u, _)| end[u] + comm(u, t))
                .max()
                .unwrap_or(0);
            start[t] = s;
            end[t] = s + problem.size(t);
        }
        let total = end.iter().copied().max().unwrap_or(0);
        Schedule { start, end, total }
    }

    /// Compute a serialized schedule: one task at a time per cluster
    /// (processor). Greedy list scheduling — among tasks whose
    /// predecessors are all finished, repeatedly start the one with the
    /// earliest feasible start (`max(data ready, processor free)`), ties
    /// by task id.
    pub fn serialized<F>(graph: &ClusteredProblemGraph, mut comm: F) -> Self
    where
        F: FnMut(TaskId, TaskId) -> Time,
    {
        let problem = graph.problem();
        let n = problem.len();
        let mut start = vec![0 as Time; n];
        let mut end = vec![0 as Time; n];
        let mut scheduled = vec![false; n];
        let mut remaining_preds: Vec<usize> =
            (0..n).map(|t| problem.predecessors(t).len()).collect();
        // Cache per-edge communication so `comm` is called once per edge.
        let mut data_ready = vec![0 as Time; n];
        let mut proc_free = vec![0 as Time; graph.num_clusters()];
        for _ in 0..n {
            // Pick the ready task with the earliest feasible start.
            let mut best: Option<(Time, TaskId)> = None;
            for t in 0..n {
                if scheduled[t] || remaining_preds[t] > 0 {
                    continue;
                }
                let feasible = data_ready[t].max(proc_free[graph.cluster_of(t)]);
                if best.is_none_or(|(bt, bid)| (feasible, t) < (bt, bid)) {
                    best = Some((feasible, t));
                }
            }
            let (s, t) = best.expect("DAG always has a ready task");
            scheduled[t] = true;
            start[t] = s;
            end[t] = s + problem.size(t);
            proc_free[graph.cluster_of(t)] = end[t];
            for &(v, _) in problem.successors(t) {
                remaining_preds[v] -= 1;
                data_ready[v] = data_ready[v].max(end[t] + comm(t, v));
            }
        }
        let total = end.iter().copied().max().unwrap_or(0);
        Schedule { start, end, total }
    }

    /// Dispatch on [`EvaluationModel`].
    pub fn compute<F>(graph: &ClusteredProblemGraph, model: EvaluationModel, comm: F) -> Self
    where
        F: FnMut(TaskId, TaskId) -> Time,
    {
        match model {
            EvaluationModel::Precedence => Schedule::precedence(graph, comm),
            EvaluationModel::Serialized => Schedule::serialized(graph, comm),
        }
    }

    /// Start time of task `t`.
    #[inline]
    pub fn start(&self, t: TaskId) -> Time {
        self.start[t]
    }

    /// End time of task `t`.
    #[inline]
    pub fn end(&self, t: TaskId) -> Time {
        self.end[t]
    }

    /// All start times (the paper's `start[np]` / `i_start[np]`).
    pub fn starts(&self) -> &[Time] {
        &self.start
    }

    /// All end times (the paper's `end[np]` / `i_end[np]`).
    pub fn ends(&self) -> &[Time] {
        &self.end
    }

    /// The makespan — the paper's *total time*.
    #[inline]
    pub fn total(&self) -> Time {
        self.total
    }

    /// The *latest tasks*: those ending at the total time (§2.1 term 1).
    pub fn latest_tasks(&self) -> Vec<TaskId> {
        (0..self.end.len())
            .filter(|&t| self.end[t] == self.total)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_taskgraph::{Clustering, ProblemGraph};

    /// Two independent 3-unit tasks in one cluster feeding a sink in
    /// another; cross edge weight 2.
    fn fixture() -> ClusteredProblemGraph {
        let p = ProblemGraph::from_paper_edges(&[3, 3, 1], &[(1, 3, 2), (2, 3, 2)]).unwrap();
        let c = Clustering::new(vec![0, 0, 1]).unwrap();
        ClusteredProblemGraph::new(p, c).unwrap()
    }

    #[test]
    fn precedence_allows_same_processor_overlap() {
        let g = fixture();
        let s = Schedule::precedence(&g, |u, v| g.clus_weight(u, v));
        // Both sources start at 0 despite sharing cluster 0.
        assert_eq!(s.start(0), 0);
        assert_eq!(s.start(1), 0);
        assert_eq!(s.start(2), 5);
        assert_eq!(s.total(), 6);
        assert_eq!(s.latest_tasks(), vec![2]);
    }

    #[test]
    fn serialized_forbids_overlap() {
        let g = fixture();
        let s = Schedule::serialized(&g, |u, v| g.clus_weight(u, v));
        // Cluster 0 runs tasks 0 then 1 back to back.
        assert_eq!(s.start(0), 0);
        assert_eq!(s.start(1), 3);
        assert_eq!(s.end(1), 6);
        // Sink waits for the later message: end(1)=6 + comm 2 = 8.
        assert_eq!(s.start(2), 8);
        assert_eq!(s.total(), 9);
    }

    #[test]
    fn serialized_never_beats_precedence() {
        let g = fixture();
        let p = Schedule::precedence(&g, |u, v| g.clus_weight(u, v));
        let s = Schedule::serialized(&g, |u, v| g.clus_weight(u, v));
        assert!(s.total() >= p.total());
        for t in 0..3 {
            assert!(s.start(t) >= p.start(t), "task {t}");
        }
    }

    #[test]
    fn compute_dispatches() {
        let g = fixture();
        assert_eq!(
            Schedule::compute(&g, EvaluationModel::Precedence, |u, v| g.clus_weight(u, v)),
            Schedule::precedence(&g, |u, v| g.clus_weight(u, v))
        );
        assert_eq!(
            Schedule::compute(&g, EvaluationModel::Serialized, |u, v| g.clus_weight(u, v)),
            Schedule::serialized(&g, |u, v| g.clus_weight(u, v))
        );
    }

    #[test]
    fn zero_comm_reduces_to_critical_path() {
        let g = fixture();
        let s = Schedule::precedence(&g, |_, _| 0);
        assert_eq!(s.total(), 4, "3-unit source + 1-unit sink");
    }

    #[test]
    fn single_task_schedule() {
        let p = ProblemGraph::from_paper_edges(&[7], &[]).unwrap();
        let c = Clustering::new(vec![0]).unwrap();
        let g = ClusteredProblemGraph::new(p, c).unwrap();
        let s = Schedule::precedence(&g, |_, _| 0);
        assert_eq!(s.total(), 7);
        assert_eq!(s.latest_tasks(), vec![0]);
    }
}

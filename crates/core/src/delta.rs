//! Incremental (delta) evaluation of assignment changes — the
//! refinement hot path.
//!
//! Every refinement loop in the repo asks the same question thousands of
//! times: *what would the total time be if these few clusters moved?*
//! Answering it with [`evaluate_assignment`](crate::evaluate_assignment)
//! costs a from-scratch schedule over the whole task graph plus an
//! assignment clone per candidate. [`DeltaEvaluator`] instead keeps the
//! committed schedule alive and, per candidate, recomputes only the
//! *disturbed cone*: the tasks whose communication costs changed and
//! everything downstream of an actually-shifted end time, repaired by
//! worklist propagation in topological order (the same technique as
//! `mimd-online`'s `IncrementalBound`). A segment max-tree over the task
//! end times maintains the makespan under both increases and decreases
//! in `O(log np)` per shifted task, so a candidate whose cone is small
//! costs almost nothing — independent of graph size.
//!
//! Exactness contract: every staged total equals
//! `evaluate_assignment(graph, system, candidate, model)?.total()`
//! **bit for bit** (property-tested in `tests/delta.rs` for both models,
//! pins on and off). The precedence model is repaired incrementally; the
//! serialized model's greedy list schedule reorders globally under any
//! move, so it is recomputed in full — but allocation-free, into
//! workspace scratch.
//!
//! All buffers live in a caller-owned [`DeltaWorkspace`] so batch loops
//! (flat refinement, the multilevel V-cycle, online sessions) reuse one
//! workspace across attachments — zero allocation per candidate, and
//! none per level either once the buffers have grown to size.

use mimd_graph::error::GraphError;
use mimd_graph::{Time, Weight};
use mimd_taskgraph::{ClusteredProblemGraph, TaskId};
use mimd_topology::SystemGraph;

use crate::assignment::Assignment;
use crate::schedule::EvaluationModel;

/// Reusable buffer bag for [`DeltaEvaluator`]. Create once, pass to
/// every [`DeltaEvaluator::attach`]; buffers are resized (never shrunk
/// below capacity) on attach and reused across candidates and
/// attachments.
#[derive(Clone, Debug, Default)]
pub struct DeltaWorkspace {
    /// Committed start time per task (precedence model).
    start: Vec<Time>,
    /// Committed end time per task (precedence model).
    end: Vec<Time>,
    /// Segment max-tree over `end` (1-indexed, `2 * tree_cap` slots);
    /// `tree[1]` is the makespan.
    tree: Vec<Time>,
    tree_cap: usize,
    /// Topological position per task.
    topo_pos: Vec<usize>,
    /// Binary min-heap of topological positions (the worklist).
    heap: Vec<usize>,
    /// Per-task queued flag backing the worklist.
    in_queue: Vec<bool>,
    /// Undo log of `(task, old_start, old_end)` for staged schedule
    /// repairs.
    undo_sched: Vec<(TaskId, Time, Time)>,
    /// Undo log of `(cluster, old_processor)` for staged moves; also the
    /// seed list for the disturbed cone.
    undo_moves: Vec<(usize, usize)>,
    /// CSR offsets of `cluster_tasks` (one slice per cluster).
    cluster_task_off: Vec<usize>,
    /// Task ids grouped by owning cluster.
    cluster_tasks: Vec<TaskId>,
    /// Serialized-model scratch: scheduled flag per task.
    ser_scheduled: Vec<bool>,
    /// Serialized-model scratch: unfinished predecessor count per task.
    ser_remaining: Vec<usize>,
    /// Serialized-model scratch: data-ready time per task.
    ser_ready: Vec<Time>,
    /// Serialized-model scratch: processor-free time per cluster.
    ser_free: Vec<Time>,
}

impl DeltaWorkspace {
    /// An empty workspace; buffers grow on first
    /// [`DeltaEvaluator::attach`].
    pub fn new() -> Self {
        DeltaWorkspace::default()
    }
}

/// Update leaf `t` of the max-tree to `value` and re-aggregate its
/// root path.
#[inline]
fn tree_update(tree: &mut [Time], cap: usize, t: usize, value: Time) {
    let mut i = cap + t;
    tree[i] = value;
    i >>= 1;
    while i >= 1 {
        tree[i] = tree[2 * i].max(tree[2 * i + 1]);
        if i == 1 {
            break;
        }
        i >>= 1;
    }
}

#[inline]
fn heap_push(heap: &mut Vec<usize>, pos: usize) {
    heap.push(pos);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[parent] <= heap[i] {
            break;
        }
        heap.swap(parent, i);
        i = parent;
    }
}

#[inline]
fn heap_pop(heap: &mut Vec<usize>) -> Option<usize> {
    let last = heap.len().checked_sub(1)?;
    heap.swap(0, last);
    let top = heap.pop();
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut smallest = i;
        if l < heap.len() && heap[l] < heap[smallest] {
            smallest = l;
        }
        if r < heap.len() && heap[r] < heap[smallest] {
            smallest = r;
        }
        if smallest == i {
            break;
        }
        heap.swap(i, smallest);
        i = smallest;
    }
    top
}

/// Incremental evaluator over one `(graph, system, model)` triple.
///
/// Owns the committed assignment and schedule; candidates are *staged*
/// (moves applied, cone repaired, total read) and then either
/// [`commit`](DeltaEvaluator::commit)ted — the candidate becomes the new
/// committed state — or [`discard`](DeltaEvaluator::discard)ed, rolling
/// every touched buffer back via the undo logs. The `peek_*` / `apply_*`
/// conveniences wrap the stage–decide cycle for one-shot callers.
pub struct DeltaEvaluator<'a, 'w> {
    graph: &'a ClusteredProblemGraph,
    system: &'a SystemGraph,
    model: EvaluationModel,
    ws: &'w mut DeltaWorkspace,
    assignment: Assignment,
    total: Time,
    staged: Option<Time>,
}

impl<'a, 'w> DeltaEvaluator<'a, 'w> {
    /// Attach `ws` to an instance and build the committed schedule of
    /// `start`. Validation (and the error cases) are identical to
    /// [`evaluate_assignment`](crate::evaluate_assignment).
    pub fn attach(
        ws: &'w mut DeltaWorkspace,
        graph: &'a ClusteredProblemGraph,
        system: &'a SystemGraph,
        model: EvaluationModel,
        start: &Assignment,
    ) -> Result<Self, GraphError> {
        if graph.num_clusters() != system.len() {
            return Err(GraphError::SizeMismatch {
                left: graph.num_clusters(),
                right: system.len(),
            });
        }
        if start.len() != system.len() {
            return Err(GraphError::SizeMismatch {
                left: start.len(),
                right: system.len(),
            });
        }
        let problem = graph.problem();
        let n = problem.len();
        let nc = graph.num_clusters();

        ws.topo_pos.clear();
        ws.topo_pos.resize(n, 0);
        for (pos, &t) in problem.topo_order().iter().enumerate() {
            ws.topo_pos[t] = pos;
        }
        // Tasks grouped by cluster (CSR), the seed source for moves.
        ws.cluster_task_off.clear();
        ws.cluster_task_off.resize(nc + 1, 0);
        for t in 0..n {
            ws.cluster_task_off[graph.cluster_of(t) + 1] += 1;
        }
        for c in 0..nc {
            ws.cluster_task_off[c + 1] += ws.cluster_task_off[c];
        }
        ws.cluster_tasks.clear();
        ws.cluster_tasks.resize(n, 0);
        let mut cursor = ws.cluster_task_off.clone();
        for t in 0..n {
            let c = graph.cluster_of(t);
            ws.cluster_tasks[cursor[c]] = t;
            cursor[c] += 1;
        }

        ws.heap.clear();
        ws.in_queue.clear();
        ws.in_queue.resize(n, false);
        ws.undo_sched.clear();
        ws.undo_moves.clear();
        ws.start.clear();
        ws.start.resize(n, 0);
        ws.end.clear();
        ws.end.resize(n, 0);
        let cap = n.next_power_of_two().max(1);
        ws.tree_cap = cap;
        ws.tree.clear();
        ws.tree.resize(2 * cap, 0);
        ws.ser_scheduled.clear();
        ws.ser_remaining.clear();
        ws.ser_ready.clear();
        ws.ser_free.clear();

        let mut evaluator = DeltaEvaluator {
            graph,
            system,
            model,
            ws,
            assignment: start.clone(),
            total: 0,
            staged: None,
        };
        evaluator.rebuild_committed();
        Ok(evaluator)
    }

    /// Full (re)build of the committed schedule — attach-time only;
    /// staged candidates repair instead.
    fn rebuild_committed(&mut self) {
        match self.model {
            EvaluationModel::Precedence => {
                let ws = &mut *self.ws;
                let problem = self.graph.problem();
                let graph = self.graph;
                let system = self.system;
                let assignment = &self.assignment;
                for &t in problem.topo_order() {
                    let mut s: Time = 0;
                    for &(u, w) in problem.predecessors(t) {
                        let arrive = ws.end[u] + comm(graph, system, assignment, u, t, w);
                        s = s.max(arrive);
                    }
                    ws.start[t] = s;
                    ws.end[t] = s + problem.size(t);
                }
                for t in 0..problem.len() {
                    ws.tree[ws.tree_cap + t] = ws.end[t];
                }
                for i in (1..ws.tree_cap).rev() {
                    ws.tree[i] = ws.tree[2 * i].max(ws.tree[2 * i + 1]);
                }
                self.total = ws.tree[1];
            }
            EvaluationModel::Serialized => {
                self.total = self.eval_serialized();
            }
        }
    }

    /// The committed total time.
    #[inline]
    pub fn total(&self) -> Time {
        self.total
    }

    /// The committed assignment.
    #[inline]
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The evaluation model.
    #[inline]
    pub fn model(&self) -> EvaluationModel {
        self.model
    }

    /// `true` while a candidate is staged (awaiting commit/discard).
    #[inline]
    pub fn is_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// Move cluster `a` to processor `s` if that is an actual change,
    /// recording the undo entry.
    #[inline]
    fn push_move(&mut self, a: usize, s: usize) {
        let old = self.assignment.sys_of(a);
        if old != s {
            self.ws.undo_moves.push((a, old));
            self.assignment.place(a, s);
        }
    }

    /// Stage the same re-placement as
    /// [`Assignment::place_subset`](crate::Assignment::place_subset):
    /// `clusters[i]` goes to `processors[perm[i]]`. Returns the
    /// candidate's total time; the evaluator stays staged until
    /// [`commit`](DeltaEvaluator::commit) or
    /// [`discard`](DeltaEvaluator::discard).
    pub fn stage_place(
        &mut self,
        clusters: &[usize],
        processors: &[usize],
        perm: &[usize],
    ) -> Time {
        assert!(self.staged.is_none(), "previous candidate still staged");
        assert_eq!(clusters.len(), processors.len(), "subset sizes must match");
        assert_eq!(clusters.len(), perm.len(), "permutation size must match");
        for (i, &a) in clusters.iter().enumerate() {
            self.push_move(a, processors[perm[i]]);
        }
        self.eval_staged()
    }

    /// Stage a full candidate assignment (diffed against the committed
    /// one — only actual moves cost anything). `candidate` must have the
    /// committed assignment's length.
    pub fn stage_candidate(&mut self, candidate: &Assignment) -> Time {
        assert!(self.staged.is_none(), "previous candidate still staged");
        assert_eq!(candidate.len(), self.assignment.len(), "candidate size");
        for a in 0..candidate.len() {
            self.push_move(a, candidate.sys_of(a));
        }
        self.eval_staged()
    }

    /// Stage the pairwise exchange of clusters `a` and `b`.
    pub fn stage_swap(&mut self, a: usize, b: usize) -> Time {
        assert!(self.staged.is_none(), "previous candidate still staged");
        let (sa, sb) = (self.assignment.sys_of(a), self.assignment.sys_of(b));
        self.push_move(a, sb);
        self.push_move(b, sa);
        self.eval_staged()
    }

    /// Evaluate the staged moves; cone repair for precedence,
    /// allocation-free full recompute for serialized.
    fn eval_staged(&mut self) -> Time {
        let total = match self.model {
            EvaluationModel::Precedence => self.eval_precedence(),
            EvaluationModel::Serialized => self.eval_serialized(),
        };
        self.staged = Some(total);
        total
    }

    /// Worklist repair of the precedence schedule: seed every task with
    /// a potentially-changed incoming communication cost, then pop in
    /// topological order, recomputing starts and pushing successors only
    /// when an end time actually shifted. Monotone pops guarantee each
    /// task is recomputed at most once per candidate.
    fn eval_precedence(&mut self) -> Time {
        let ws = &mut *self.ws;
        let graph = self.graph;
        let system = self.system;
        let assignment = &self.assignment;
        let problem = graph.problem();
        let topo = problem.topo_order();

        // Seed: tasks of moved clusters (their in-edges changed cost)
        // and their successors (out-edges changed cost).
        for i in 0..ws.undo_moves.len() {
            let c = ws.undo_moves[i].0;
            let (lo, hi) = (ws.cluster_task_off[c], ws.cluster_task_off[c + 1]);
            for k in lo..hi {
                let t = ws.cluster_tasks[k];
                if !problem.predecessors(t).is_empty() && !ws.in_queue[t] {
                    ws.in_queue[t] = true;
                    heap_push(&mut ws.heap, ws.topo_pos[t]);
                }
                for &(v, _) in problem.successors(t) {
                    if !ws.in_queue[v] {
                        ws.in_queue[v] = true;
                        heap_push(&mut ws.heap, ws.topo_pos[v]);
                    }
                }
            }
        }

        while let Some(pos) = heap_pop(&mut ws.heap) {
            let t = topo[pos];
            ws.in_queue[t] = false;
            let mut s: Time = 0;
            for &(u, w) in problem.predecessors(t) {
                let arrive = ws.end[u] + comm(graph, system, assignment, u, t, w);
                s = s.max(arrive);
            }
            if s == ws.start[t] {
                continue;
            }
            let e = s + problem.size(t);
            ws.undo_sched.push((t, ws.start[t], ws.end[t]));
            ws.start[t] = s;
            ws.end[t] = e;
            tree_update(&mut ws.tree, ws.tree_cap, t, e);
            for &(v, _) in problem.successors(t) {
                if !ws.in_queue[v] {
                    ws.in_queue[v] = true;
                    heap_push(&mut ws.heap, ws.topo_pos[v]);
                }
            }
        }
        ws.tree[1]
    }

    /// Allocation-free recompute of the serialized (greedy list
    /// scheduling) total — the algorithm of `Schedule::serialized`
    /// verbatim, against workspace scratch instead of fresh vectors.
    fn eval_serialized(&mut self) -> Time {
        let ws = &mut *self.ws;
        let graph = self.graph;
        let system = self.system;
        let assignment = &self.assignment;
        let problem = graph.problem();
        let n = problem.len();
        ws.ser_scheduled.clear();
        ws.ser_scheduled.resize(n, false);
        ws.ser_ready.clear();
        ws.ser_ready.resize(n, 0);
        ws.ser_free.clear();
        ws.ser_free.resize(graph.num_clusters(), 0);
        ws.ser_remaining.clear();
        ws.ser_remaining
            .extend((0..n).map(|t| problem.predecessors(t).len()));
        let mut total: Time = 0;
        for _ in 0..n {
            let mut best: Option<(Time, TaskId)> = None;
            for t in 0..n {
                if ws.ser_scheduled[t] || ws.ser_remaining[t] > 0 {
                    continue;
                }
                let feasible = ws.ser_ready[t].max(ws.ser_free[graph.cluster_of(t)]);
                if best.is_none_or(|(bt, bid)| (feasible, t) < (bt, bid)) {
                    best = Some((feasible, t));
                }
            }
            let (s, t) = best.expect("DAG always has a ready task");
            ws.ser_scheduled[t] = true;
            let e = s + problem.size(t);
            ws.ser_free[graph.cluster_of(t)] = e;
            total = total.max(e);
            for &(v, w) in problem.successors(t) {
                ws.ser_remaining[v] -= 1;
                ws.ser_ready[v] = ws.ser_ready[v].max(e + comm(graph, system, assignment, t, v, w));
            }
        }
        total
    }

    /// Accept the staged candidate: it becomes the committed state. The
    /// undo logs are simply dropped.
    pub fn commit(&mut self) {
        let total = self.staged.take().expect("no candidate staged");
        self.ws.undo_sched.clear();
        self.ws.undo_moves.clear();
        self.total = total;
    }

    /// Reject the staged candidate: every touched buffer is rolled back
    /// via the undo logs (`O(cone)`, like the evaluation itself).
    pub fn discard(&mut self) {
        assert!(self.staged.take().is_some(), "no candidate staged");
        while let Some((t, s, e)) = self.ws.undo_sched.pop() {
            self.ws.start[t] = s;
            self.ws.end[t] = e;
            tree_update(&mut self.ws.tree, self.ws.tree_cap, t, e);
        }
        while let Some((a, old)) = self.ws.undo_moves.pop() {
            self.assignment.place(a, old);
        }
    }

    /// Evaluate a [`place_subset`](crate::Assignment::place_subset)-style
    /// re-placement without keeping it.
    pub fn peek_place(&mut self, clusters: &[usize], processors: &[usize], perm: &[usize]) -> Time {
        let total = self.stage_place(clusters, processors, perm);
        self.discard();
        total
    }

    /// Evaluate a full candidate assignment without keeping it.
    pub fn peek_candidate(&mut self, candidate: &Assignment) -> Time {
        let total = self.stage_candidate(candidate);
        self.discard();
        total
    }

    /// Evaluate a pairwise exchange without keeping it.
    pub fn peek_swap(&mut self, a: usize, b: usize) -> Time {
        let total = self.stage_swap(a, b);
        self.discard();
        total
    }

    /// Evaluate and keep a re-placement.
    pub fn apply_place(
        &mut self,
        clusters: &[usize],
        processors: &[usize],
        perm: &[usize],
    ) -> Time {
        let total = self.stage_place(clusters, processors, perm);
        self.commit();
        total
    }

    /// Evaluate and keep a full candidate assignment.
    pub fn apply_candidate(&mut self, candidate: &Assignment) -> Time {
        let total = self.stage_candidate(candidate);
        self.commit();
        total
    }

    /// Evaluate and keep a pairwise exchange.
    pub fn apply_swap(&mut self, a: usize, b: usize) -> Time {
        let total = self.stage_swap(a, b);
        self.commit();
        total
    }
}

/// The per-edge communication cost — the exact arithmetic of
/// [`evaluate_assignment`](crate::evaluate_assignment)'s closure
/// (`clus_weight × hops`, 0 intra-cluster), with the edge weight taken
/// from the adjacency list instead of a matrix probe.
#[inline]
fn comm(
    graph: &ClusteredProblemGraph,
    system: &SystemGraph,
    assignment: &Assignment,
    u: TaskId,
    t: TaskId,
    w: Weight,
) -> Time {
    let (cu, ct) = (graph.cluster_of(u), graph.cluster_of(t));
    if cu == ct || w == 0 {
        0
    } else {
        w * Time::from(system.hops(assignment.sys_of(cu), assignment.sys_of(ct)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate_assignment;
    use crate::shuffle::fisher_yates;
    use mimd_taskgraph::paper;
    use mimd_topology::ring;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn worked() -> (ClusteredProblemGraph, SystemGraph) {
        (paper::worked_example(), ring(4).unwrap())
    }

    fn full_total(
        g: &ClusteredProblemGraph,
        sys: &SystemGraph,
        a: &Assignment,
        model: EvaluationModel,
    ) -> Time {
        evaluate_assignment(g, sys, a, model).unwrap().total()
    }

    #[test]
    fn attach_matches_full_evaluation() {
        let (g, sys) = worked();
        for model in [EvaluationModel::Precedence, EvaluationModel::Serialized] {
            let mut ws = DeltaWorkspace::new();
            let a = Assignment::identity(4);
            let ev = DeltaEvaluator::attach(&mut ws, &g, &sys, model, &a).unwrap();
            assert_eq!(ev.total(), full_total(&g, &sys, &a, model));
            assert_eq!(ev.assignment(), &a);
            assert_eq!(ev.model(), model);
        }
    }

    #[test]
    fn swaps_match_full_evaluation_and_roll_back() {
        let (g, sys) = worked();
        for model in [EvaluationModel::Precedence, EvaluationModel::Serialized] {
            let mut ws = DeltaWorkspace::new();
            let a = Assignment::identity(4);
            let mut ev = DeltaEvaluator::attach(&mut ws, &g, &sys, model, &a).unwrap();
            let committed = ev.total();
            for x in 0..4 {
                for y in 0..4 {
                    if x == y {
                        continue;
                    }
                    let mut swapped = a.clone();
                    swapped.swap_clusters(x, y);
                    assert_eq!(
                        ev.peek_swap(x, y),
                        full_total(&g, &sys, &swapped, model),
                        "{model:?} swap {x}<->{y}"
                    );
                    // Rollback restored the committed state.
                    assert_eq!(ev.total(), committed);
                    assert_eq!(ev.assignment(), &a);
                    assert_eq!(ev.peek_candidate(&a), committed);
                }
            }
        }
    }

    #[test]
    fn apply_commits_and_further_deltas_stack() {
        let (g, sys) = worked();
        let mut ws = DeltaWorkspace::new();
        let mut current = Assignment::identity(4);
        let mut ev =
            DeltaEvaluator::attach(&mut ws, &g, &sys, EvaluationModel::Precedence, &current)
                .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let candidate = Assignment::random(4, &mut rng);
            let total = ev.apply_candidate(&candidate);
            current = candidate;
            assert_eq!(
                total,
                full_total(&g, &sys, &current, EvaluationModel::Precedence)
            );
            assert_eq!(ev.assignment(), &current);
            assert_eq!(ev.total(), total);
        }
    }

    #[test]
    fn stage_place_matches_place_subset() {
        let (g, sys) = worked();
        let mut ws = DeltaWorkspace::new();
        let base = Assignment::from_sys_of(vec![3, 2, 1, 0]).unwrap();
        let mut ev =
            DeltaEvaluator::attach(&mut ws, &g, &sys, EvaluationModel::Precedence, &base).unwrap();
        let clusters = [0, 2, 3];
        let processors = [3, 1, 0];
        let mut rng = StdRng::seed_from_u64(9);
        let mut perm: Vec<usize> = (0..3).collect();
        for _ in 0..30 {
            fisher_yates(&mut perm, &mut rng);
            let mut reference = base.clone();
            reference.place_subset(&clusters, &processors, &perm);
            assert_eq!(
                ev.peek_place(&clusters, &processors, &perm),
                full_total(&g, &sys, &reference, EvaluationModel::Precedence)
            );
            assert_eq!(ev.assignment(), &base);
        }
    }

    #[test]
    fn validation_matches_evaluate_assignment() {
        let (g, _) = worked();
        let sys5 = ring(5).unwrap();
        let mut ws = DeltaWorkspace::new();
        assert!(matches!(
            DeltaEvaluator::attach(
                &mut ws,
                &g,
                &sys5,
                EvaluationModel::Precedence,
                &Assignment::identity(5)
            ),
            Err(GraphError::SizeMismatch { .. })
        ));
        let sys4 = ring(4).unwrap();
        assert!(DeltaEvaluator::attach(
            &mut ws,
            &g,
            &sys4,
            EvaluationModel::Precedence,
            &Assignment::identity(5)
        )
        .is_err());
    }

    #[test]
    fn workspace_reuse_across_instances() {
        let (g, sys) = worked();
        let mut ws = DeltaWorkspace::new();
        {
            let mut ev = DeltaEvaluator::attach(
                &mut ws,
                &g,
                &sys,
                EvaluationModel::Serialized,
                &Assignment::identity(4),
            )
            .unwrap();
            ev.apply_swap(0, 3);
        }
        // Re-attach with stale buffers: totals still exact.
        let a = Assignment::from_sys_of(vec![1, 0, 3, 2]).unwrap();
        let ev =
            DeltaEvaluator::attach(&mut ws, &g, &sys, EvaluationModel::Precedence, &a).unwrap();
        assert_eq!(
            ev.total(),
            full_total(&g, &sys, &a, EvaluationModel::Precedence)
        );
    }

    #[test]
    #[should_panic(expected = "still staged")]
    fn double_stage_panics() {
        let (g, sys) = worked();
        let mut ws = DeltaWorkspace::new();
        let mut ev = DeltaEvaluator::attach(
            &mut ws,
            &g,
            &sys,
            EvaluationModel::Precedence,
            &Assignment::identity(4),
        )
        .unwrap();
        ev.stage_swap(0, 1);
        ev.stage_swap(1, 2);
    }
}

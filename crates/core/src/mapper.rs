//! The end-to-end mapping pipeline (the paper's Fig 1 in one call).

use rand::Rng;
use serde::{Deserialize, Serialize};

use mimd_graph::error::GraphError;
use mimd_graph::Time;
use mimd_taskgraph::{AbstractGraph, ClusteredProblemGraph};
use mimd_telemetry::Recorder;
use mimd_topology::SystemGraph;

use crate::assignment::Assignment;
use crate::critical::{CriticalAnalysis, CriticalityMode};
use crate::delta::DeltaWorkspace;
use crate::ideal::IdealSchedule;
use crate::initial::initial_assignment;
use crate::refine::{refine_with, RefineConfig, RefineOutcome};
use crate::schedule::EvaluationModel;

/// Pipeline configuration. [`MapperConfig::default`] is the paper's
/// setup: paper-exact criticality, precedence model, `ns` refinement
/// iterations, pinned critical clusters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// Critical-edge propagation mode (default: paper-exact).
    pub criticality: CriticalityMode,
    /// Evaluation model (default: precedence).
    pub model: EvaluationModel,
    /// Refinement budget; `None` uses the paper's `ns`.
    pub refine_iterations: Option<usize>,
    /// Keep critical clusters pinned during refinement (default: true).
    pub respect_pins: bool,
    /// After the pinned refinement, run a second, unpinned pass with the
    /// same budget and keep the better result (default: true). The
    /// paper's pins occasionally lock a bad critical placement in place
    /// on sparse irregular topologies; this documented robustness pass
    /// guarantees the strategy never loses to its own initial mistakes
    /// (see DESIGN.md §5).
    pub unpinned_fallback: bool,
    /// Gain-ranked pairwise-exchange budget appended to each refinement
    /// pass ([`RefineConfig::exchange_pool`]; default 0 = off, the
    /// paper's exact behaviour).
    #[serde(default)]
    pub exchange_pool: usize,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            criticality: CriticalityMode::PaperExact,
            model: EvaluationModel::Precedence,
            refine_iterations: None,
            respect_pins: true,
            unpinned_fallback: true,
            exchange_pool: 0,
        }
    }
}

/// Everything the pipeline produced, including the intermediate
/// artifacts needed by reports and ablations.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MappingResult {
    /// The final cluster→processor placement.
    pub assignment: Assignment,
    /// Total execution time of the final placement.
    pub total_time: Time,
    /// The ideal-graph lower bound (Theorem 3 target).
    pub lower_bound: Time,
    /// Total time of the greedy initial assignment (before refinement).
    pub initial_total: Time,
    /// Refinement statistics.
    pub refinement: RefineOutcome,
    /// Critical degrees per cluster (diagnostic).
    pub critical_degrees: Vec<u64>,
    /// Which clusters were pinned as critical abstract nodes.
    pub pinned: Vec<bool>,
}

impl MappingResult {
    /// The paper's headline metric: `100 × total / lower_bound`
    /// ("percentage over lower bound"; 100.0 means provably optimal).
    pub fn percent_over_lower_bound(&self) -> f64 {
        100.0 * self.total_time as f64 / self.lower_bound as f64
    }

    /// `true` iff the mapping is provably optimal (total == lower bound).
    pub fn is_provably_optimal(&self) -> bool {
        self.total_time == self.lower_bound
    }
}

/// The mapping strategy: ideal graph → critical edges → initial
/// assignment → refinement with the termination condition.
#[derive(Clone, Debug, Default)]
pub struct Mapper {
    config: MapperConfig,
    recorder: Recorder,
}

impl Mapper {
    /// Mapper with the paper's default configuration.
    pub fn new() -> Self {
        Mapper::default()
    }

    /// Mapper with a custom configuration.
    pub fn with_config(config: MapperConfig) -> Self {
        Mapper {
            config,
            recorder: Recorder::default(),
        }
    }

    /// Attach a telemetry recorder (refinement candidate/acceptance
    /// counters land on it).
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Map `graph` onto `system` (requires `na == ns`). The RNG drives
    /// only the refinement's random re-placements.
    pub fn map(
        &self,
        graph: &ClusteredProblemGraph,
        system: &SystemGraph,
        rng: &mut impl Rng,
    ) -> Result<MappingResult, GraphError> {
        let ideal = IdealSchedule::derive(graph);
        let critical = CriticalAnalysis::analyze(graph, &ideal, self.config.criticality);
        let abstract_graph = AbstractGraph::new(graph);
        let init = initial_assignment(graph, &abstract_graph, &critical, system)?;
        let refine_config = RefineConfig {
            iterations: self.config.refine_iterations.unwrap_or(system.len()),
            model: self.config.model,
            respect_pins: self.config.respect_pins,
            exchange_pool: self.config.exchange_pool,
        };
        // One workspace serves both refinement passes.
        let mut ws = DeltaWorkspace::new();
        let mut outcome = refine_with(
            graph,
            system,
            &init.assignment,
            &init.critical,
            ideal.lower_bound(),
            &refine_config,
            &self.recorder,
            &mut ws,
            rng,
        )?;
        if self.config.unpinned_fallback && !outcome.reached_lower_bound {
            let free_config = RefineConfig {
                respect_pins: false,
                ..refine_config
            };
            let second = refine_with(
                graph,
                system,
                &outcome.assignment,
                &init.critical,
                ideal.lower_bound(),
                &free_config,
                &self.recorder,
                &mut ws,
                rng,
            )?;
            if second.total < outcome.total {
                outcome = RefineOutcome {
                    initial_total: outcome.initial_total,
                    iterations_used: outcome.iterations_used + second.iterations_used,
                    improvements: outcome.improvements + second.improvements,
                    ..second
                };
            } else {
                outcome.iterations_used += second.iterations_used;
            }
        }
        Ok(MappingResult {
            assignment: outcome.assignment.clone(),
            total_time: outcome.total,
            lower_bound: ideal.lower_bound(),
            initial_total: outcome.initial_total,
            refinement: outcome,
            critical_degrees: critical.critical_degrees().to_vec(),
            pinned: init.critical,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_taskgraph::clustering::random::random_clustering;
    use mimd_taskgraph::paper;
    use mimd_taskgraph::{GeneratorConfig, LayeredDagGenerator};
    use mimd_topology::{hypercube, ring};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn worked_example_is_provably_optimal_without_refinement() {
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let result = Mapper::new().map(&g, &sys, &mut rng).unwrap();
        assert!(result.is_provably_optimal());
        assert_eq!(result.total_time, 14);
        assert_eq!(result.initial_total, 14);
        assert_eq!(result.refinement.iterations_used, 0);
        assert_eq!(result.percent_over_lower_bound(), 100.0);
        assert_eq!(
            result.critical_degrees,
            paper::WORKED_CRITICAL_DEGREES.to_vec()
        );
    }

    #[test]
    fn random_instances_beat_or_match_random_mapping_on_average() {
        let gen = LayeredDagGenerator::new(GeneratorConfig {
            tasks: 60,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let sys = hypercube(3).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut ours_sum = 0.0;
        let mut rand_sum = 0.0;
        for _ in 0..5 {
            let p = gen.generate(&mut rng);
            let c = random_clustering(&p, 8, &mut rng).unwrap();
            let g = ClusteredProblemGraph::new(p, c).unwrap();
            let result = Mapper::new().map(&g, &sys, &mut rng).unwrap();
            let (avg, _, _) = crate::evaluate::random_mapping_average(
                &g,
                &sys,
                EvaluationModel::Precedence,
                16,
                &mut rng,
            )
            .unwrap();
            ours_sum += result.total_time as f64;
            rand_sum += avg;
            assert!(result.total_time as f64 >= result.lower_bound as f64);
        }
        assert!(
            ours_sum <= rand_sum,
            "strategy ({ours_sum}) should beat random mapping ({rand_sum}) on average"
        );
    }

    #[test]
    fn result_total_never_below_lower_bound() {
        let gen = LayeredDagGenerator::new(GeneratorConfig {
            tasks: 40,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let sys = ring(5).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let p = gen.generate(&mut rng);
            let c = random_clustering(&p, 5, &mut rng).unwrap();
            let g = ClusteredProblemGraph::new(p, c).unwrap();
            let r = Mapper::new().map(&g, &sys, &mut rng).unwrap();
            assert!(r.total_time >= r.lower_bound);
            assert!(r.total_time <= r.initial_total);
        }
    }

    #[test]
    fn custom_config_is_respected() {
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        let cfg = MapperConfig {
            criticality: CriticalityMode::Extended,
            refine_iterations: Some(0),
            ..MapperConfig::default()
        };
        let mapper = Mapper::with_config(cfg.clone());
        assert_eq!(mapper.config(), &cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let r = mapper.map(&g, &sys, &mut rng).unwrap();
        assert!(r.refinement.iterations_used <= 1);
    }

    #[test]
    fn na_ns_mismatch_rejected() {
        let g = paper::worked_example();
        let sys = ring(5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(Mapper::new().map(&g, &sys, &mut rng).is_err());
    }
}

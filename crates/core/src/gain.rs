//! KL/FM-style gain table for pairwise-exchange refinement.
//!
//! A [`GainTable`] maintains, per cluster, the *external communication
//! cost* `ext[c] = Σ_x W[c][x] · hops(s_c, s_x)` over the cluster-level
//! (abstract) adjacency — the weighted-comm-volume part of the
//! objective. Swapping two clusters changes only the terms incident to
//! them, so the table prices an exchange in `O(deg a + deg b)` and
//! repairs itself per accepted move without ever rescanning the graph —
//! the trick that lets VieM-style mappers afford wide exchange pools.
//!
//! The table's gain is a **proxy**: the real objective is the schedule
//! makespan, which comm volume only approximates. The exchange pass in
//! [`refine`](crate::refine::refine) therefore uses the table to *rank*
//! candidate swaps and the exact [`DeltaEvaluator`](crate::DeltaEvaluator)
//! to accept them, so the proxy can only ever cost ordering quality,
//! never correctness.
//!
//! Movability and boundary membership are bit-packed ([`BitSet`]), in
//! the spirit of the bitboard representations chess engines use for
//! exactly this kind of hot membership test.

use mimd_graph::{BitSet, Weight};
use mimd_taskgraph::{AbstractGraph, ClusteredProblemGraph};
use mimd_topology::SystemGraph;

use crate::assignment::Assignment;

/// Incrementally maintained per-cluster external costs plus the
/// movable/boundary sets driving exchange candidate generation.
#[derive(Clone, Debug)]
pub struct GainTable {
    /// CSR offsets into `adj` (one slice per cluster).
    adj_off: Vec<usize>,
    /// `(neighbor cluster, summed cross weight)` pairs.
    adj: Vec<(usize, Weight)>,
    /// `ext[c] = Σ_x W[c][x] · hops(s_c, s_x)` under the tracked
    /// assignment.
    ext: Vec<u64>,
    /// Clusters refinement may move (the unpinned ones).
    movable: BitSet,
    /// Movable clusters with at least one neighbor further than one hop
    /// — the only ones whose own external cost an exchange can shrink.
    boundary: BitSet,
}

impl GainTable {
    /// Build the table for `assignment` with per-cluster pin flags
    /// (`pinned[c]` ⇒ not movable). `respect_pins: false` callers pass
    /// all-false flags.
    pub fn new(
        graph: &ClusteredProblemGraph,
        system: &SystemGraph,
        assignment: &Assignment,
        pinned: &[bool],
    ) -> Self {
        let abstract_graph = AbstractGraph::new(graph);
        let na = abstract_graph.len();
        let mut adj_off = vec![0usize; na + 1];
        for a in 0..na {
            adj_off[a + 1] = adj_off[a] + abstract_graph.neighbors(a).len();
        }
        let mut adj = Vec::with_capacity(adj_off[na]);
        for a in 0..na {
            for &b in abstract_graph.neighbors(a) {
                adj.push((b, abstract_graph.pair_weight(a, b)));
            }
        }
        let mut table = GainTable {
            adj_off,
            adj,
            ext: vec![0; na],
            movable: BitSet::new(na),
            boundary: BitSet::new(na),
        };
        for (c, &p) in pinned.iter().enumerate() {
            if !p {
                table.movable.insert(c);
            }
        }
        for c in 0..na {
            table.ext[c] = table.compute_ext(c, assignment, system);
            table.refresh_boundary(c, assignment, system);
        }
        table
    }

    /// The abstract neighbors of `c` with summed cross weights.
    #[inline]
    pub fn neighbors(&self, c: usize) -> &[(usize, Weight)] {
        &self.adj[self.adj_off[c]..self.adj_off[c + 1]]
    }

    /// Current external cost of `c`.
    #[inline]
    pub fn ext(&self, c: usize) -> u64 {
        self.ext[c]
    }

    /// The movable-cluster set.
    #[inline]
    pub fn movable(&self) -> &BitSet {
        &self.movable
    }

    /// The boundary set (movable, with some neighbor beyond one hop).
    #[inline]
    pub fn boundary(&self) -> &BitSet {
        &self.boundary
    }

    fn compute_ext(&self, c: usize, assignment: &Assignment, system: &SystemGraph) -> u64 {
        let sc = assignment.sys_of(c);
        self.neighbors(c)
            .iter()
            .map(|&(x, w)| w * u64::from(system.hops(sc, assignment.sys_of(x))))
            .sum()
    }

    fn refresh_boundary(&mut self, c: usize, assignment: &Assignment, system: &SystemGraph) {
        let sc = assignment.sys_of(c);
        let far = self.movable.contains(c)
            && self
                .neighbors(c)
                .iter()
                .any(|&(x, _)| system.hops(sc, assignment.sys_of(x)) > 1);
        if far {
            self.boundary.insert(c);
        } else {
            self.boundary.remove(c);
        }
    }

    /// Proxy gain of exchanging `a` and `b` under `assignment` (their
    /// *current* hosts): the drop in total external cost, positive when
    /// the swap reduces weighted comm volume. The `a`–`b` edge itself is
    /// unaffected (its endpoints trade places). `O(deg a + deg b)`.
    pub fn swap_gain(
        &self,
        a: usize,
        b: usize,
        assignment: &Assignment,
        system: &SystemGraph,
    ) -> i64 {
        let (sa, sb) = (assignment.sys_of(a), assignment.sys_of(b));
        let mut gain = 0i64;
        for &(x, w) in self.neighbors(a) {
            if x == b {
                continue;
            }
            let sx = assignment.sys_of(x);
            gain += w as i64 * (i64::from(system.hops(sa, sx)) - i64::from(system.hops(sb, sx)));
        }
        for &(x, w) in self.neighbors(b) {
            if x == a {
                continue;
            }
            let sx = assignment.sys_of(x);
            gain += w as i64 * (i64::from(system.hops(sb, sx)) - i64::from(system.hops(sa, sx)));
        }
        gain
    }

    /// Repair the table after clusters `a` and `b` exchanged hosts —
    /// `assignment` is the **post-swap** state. Recomputes `ext[a]`,
    /// `ext[b]` and adjusts each neighbor's entry by its hop delta
    /// (`O(deg a + deg b)`), then refreshes boundary membership of the
    /// touched clusters.
    pub fn apply_swap(
        &mut self,
        a: usize,
        b: usize,
        assignment: &Assignment,
        system: &SystemGraph,
    ) {
        // Post-swap hosts; pre-swap hosts are the mirrored pair.
        let (sa_new, sb_new) = (assignment.sys_of(a), assignment.sys_of(b));
        let (sa_old, sb_old) = (sb_new, sa_new);
        for endpoint in [(a, sa_old, sa_new), (b, sb_old, sb_new)] {
            let (c, s_old, s_new) = endpoint;
            for k in self.adj_off[c]..self.adj_off[c + 1] {
                let (x, w) = self.adj[k];
                if x == a || x == b {
                    continue;
                }
                let sx = assignment.sys_of(x);
                let delta = w as i64
                    * (i64::from(system.hops(s_new, sx)) - i64::from(system.hops(s_old, sx)));
                self.ext[x] = (self.ext[x] as i64 + delta) as u64;
                self.refresh_boundary(x, assignment, system);
            }
            self.ext[c] = self.compute_ext(c, assignment, system);
            self.refresh_boundary(c, assignment, system);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_taskgraph::paper;
    use mimd_topology::ring;

    fn setup() -> (ClusteredProblemGraph, SystemGraph, Assignment) {
        (
            paper::worked_example(),
            ring(4).unwrap(),
            Assignment::identity(4),
        )
    }

    fn rebuilt_ext(
        table: &GainTable,
        graph: &ClusteredProblemGraph,
        system: &SystemGraph,
        assignment: &Assignment,
    ) -> Vec<u64> {
        let fresh = GainTable::new(graph, system, assignment, &vec![false; table.ext.len()]);
        fresh.ext.clone()
    }

    #[test]
    fn ext_matches_weighted_cut() {
        let (g, sys, a) = setup();
        let table = GainTable::new(&g, &sys, &a, &[false; 4]);
        // Cross-check each cluster against a direct edge scan.
        for c in 0..4 {
            let mut expect = 0u64;
            for (u, v, w) in g.cross_edges() {
                let (cu, cv) = (g.cluster_of(u), g.cluster_of(v));
                if cu == c || cv == c {
                    expect += w * u64::from(sys.hops(a.sys_of(cu), a.sys_of(cv)));
                }
            }
            assert_eq!(table.ext(c), expect, "cluster {c}");
        }
    }

    #[test]
    fn swap_gain_predicts_ext_change_exactly() {
        let (g, sys, mut a) = setup();
        let table = GainTable::new(&g, &sys, &a, &[false; 4]);
        let total_before: i64 = (0..4).map(|c| table.ext(c) as i64).sum();
        for x in 0..4 {
            for y in (x + 1)..4 {
                let gain = table.swap_gain(x, y, &a, &sys);
                a.swap_clusters(x, y);
                let total_after: i64 = rebuilt_ext(&table, &g, &sys, &a).iter().sum::<u64>() as i64;
                // ext double-counts every edge (once per endpoint), so
                // the predicted drop appears twice in the sum.
                assert_eq!(total_before - total_after, 2 * gain, "swap {x}<->{y}");
                a.swap_clusters(x, y);
            }
        }
    }

    #[test]
    fn apply_swap_matches_rebuild() {
        let (g, sys, mut a) = setup();
        let mut table = GainTable::new(&g, &sys, &a, &[false; 4]);
        for (x, y) in [(0, 3), (1, 2), (0, 1), (2, 3), (0, 2)] {
            a.swap_clusters(x, y);
            table.apply_swap(x, y, &a, &sys);
            assert_eq!(
                table.ext,
                rebuilt_ext(&table, &g, &sys, &a),
                "after swap {x}<->{y}"
            );
        }
    }

    #[test]
    fn pins_shape_movable_and_boundary() {
        let (g, sys, a) = setup();
        let table = GainTable::new(&g, &sys, &a, &[true, false, true, false]);
        assert!(!table.movable().contains(0));
        assert!(table.movable().contains(1));
        assert!(!table.movable().contains(2));
        assert!(table.movable().contains(3));
        // Boundary is a subset of movable.
        for c in table.boundary().iter() {
            assert!(table.movable().contains(c));
        }
    }
}

//! Multi-threaded refinement (an engineering extension; the paper ran
//! single-threaded on a SUN-4).
//!
//! The paper's refinement is an embarrassingly parallel random search:
//! independent streams of random re-placements, each evaluated in
//! `O(np²)`. We fan the iteration budget out over worker threads, share
//! the incumbent under a [`parking_lot::Mutex`], and broadcast the
//! lower-bound termination through an [`AtomicBool`] so every worker
//! stops the moment one of them proves optimality — the same semantics
//! as the sequential loop, just faster wall-clock.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use mimd_graph::error::GraphError;
use mimd_graph::Time;
use mimd_taskgraph::ClusteredProblemGraph;
use mimd_topology::SystemGraph;

use crate::assignment::Assignment;
use crate::refine::{refine, RefineConfig, RefineOutcome};

/// Compute `f(0), …, f(n - 1)` across up to `threads` workers, returning
/// the results in index order. Each index is computed in isolation, so
/// the output is byte-identical for every worker count — the primitive
/// the multilevel group refiner uses to evaluate a fixed batch of
/// candidates in parallel without giving up determinism. `threads <= 1`
/// (or a single item) runs inline with no thread machinery at all.
pub fn deterministic_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock() = Some(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every index computed"))
        .collect()
}

/// Parallel refinement parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct ParallelRefineConfig {
    /// Total iteration budget, split across workers.
    pub total_iterations: usize,
    /// Worker thread count (0 or 1 falls back to sequential).
    pub threads: usize,
    /// Iterations per batch between stop-flag checks.
    pub batch: usize,
    /// The sequential knobs (model, pin handling).
    pub base: RefineConfig,
}

impl ParallelRefineConfig {
    /// A sensible default: the paper's `ns` budget scaled by `threads`,
    /// batches of 8.
    pub fn new(total_iterations: usize, threads: usize, base: RefineConfig) -> Self {
        ParallelRefineConfig {
            total_iterations,
            threads,
            batch: 8,
            base,
        }
    }
}

/// Run refinement across threads; returns the best outcome found with
/// aggregate iteration counts. Deterministic for a fixed `seed` and
/// thread count up to the nondeterministic *timing* of the early-stop
/// broadcast (the returned assignment is always one whose total is the
/// minimum observed).
pub fn parallel_refine(
    graph: &ClusteredProblemGraph,
    system: &SystemGraph,
    start: &Assignment,
    pinned: &[bool],
    lower_bound: Time,
    config: &ParallelRefineConfig,
    seed: u64,
) -> Result<RefineOutcome, GraphError> {
    if config.threads <= 1 {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RefineConfig {
            iterations: config.total_iterations,
            ..config.base.clone()
        };
        return refine(graph, system, start, pinned, lower_bound, &cfg, &mut rng);
    }

    // Evaluate the start once for the shared incumbent.
    let initial = crate::evaluate::evaluate_total(graph, system, start, config.base.model)?;
    let best: Mutex<(Time, Assignment)> = Mutex::new((initial, start.clone()));
    let stop = AtomicBool::new(initial == lower_bound);
    let used = AtomicUsize::new(0);
    let improvements = AtomicUsize::new(0);
    let per_thread = config.total_iterations.div_ceil(config.threads);
    let mut first_error: Mutex<Option<GraphError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for t in 0..config.threads {
            let best = &best;
            let stop = &stop;
            let used = &used;
            let improvements = &improvements;
            let first_error = &first_error;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 + 1));
                let mut remaining = per_thread;
                while remaining > 0 && !stop.load(Ordering::Relaxed) {
                    let batch = config.batch.min(remaining);
                    remaining -= batch;
                    let cfg = RefineConfig {
                        iterations: batch,
                        ..config.base.clone()
                    };
                    let from = best.lock().1.clone();
                    match refine(graph, system, &from, pinned, lower_bound, &cfg, &mut rng) {
                        Ok(out) => {
                            used.fetch_add(out.iterations_used, Ordering::Relaxed);
                            improvements.fetch_add(out.improvements, Ordering::Relaxed);
                            let mut guard = best.lock();
                            if out.total < guard.0 {
                                *guard = (out.total, out.assignment);
                            }
                            if guard.0 == lower_bound {
                                stop.store(true, Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            let mut guard = first_error.lock();
                            if guard.is_none() {
                                *guard = Some(e);
                            }
                            stop.store(true, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = first_error.get_mut().take() {
        return Err(e);
    }
    let (total, assignment) = best.into_inner();
    Ok(RefineOutcome {
        assignment,
        total,
        initial_total: initial,
        iterations_used: used.into_inner(),
        improvements: improvements.into_inner(),
        reached_lower_bound: total == lower_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::EvaluationModel;
    use mimd_taskgraph::clustering::random::random_clustering;
    use mimd_taskgraph::paper;
    use mimd_taskgraph::{GeneratorConfig, LayeredDagGenerator};
    use mimd_topology::{hypercube, ring};

    #[test]
    fn deterministic_map_is_thread_count_invariant() {
        let f = |i: usize| i * i + 1;
        let reference: Vec<usize> = (0..37).map(f).collect();
        for threads in [0, 1, 2, 4, 9] {
            assert_eq!(deterministic_map(37, threads, f), reference);
        }
        assert_eq!(deterministic_map(0, 4, f), Vec::<usize>::new());
        assert_eq!(deterministic_map(1, 4, f), vec![1]);
    }

    #[test]
    fn sequential_fallback_matches_refine() {
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        let start = Assignment::identity(4);
        let cfg = ParallelRefineConfig::new(20, 1, RefineConfig::paper(4));
        let out = parallel_refine(&g, &sys, &start, &[false; 4], 14, &cfg, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let seq = refine(
            &g,
            &sys,
            &start,
            &[false; 4],
            14,
            &RefineConfig {
                iterations: 20,
                ..RefineConfig::paper(4)
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.total, seq.total);
    }

    #[test]
    fn parallel_finds_optimum_on_worked_example() {
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        let start = Assignment::identity(4);
        let cfg = ParallelRefineConfig::new(200, 4, RefineConfig::paper(4));
        let out = parallel_refine(&g, &sys, &start, &[false; 4], 14, &cfg, 9).unwrap();
        assert!(out.reached_lower_bound);
        assert_eq!(out.total, 14);
    }

    #[test]
    fn parallel_never_worse_than_start_on_random_instances() {
        let gen = LayeredDagGenerator::new(GeneratorConfig {
            tasks: 50,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let sys = hypercube(3).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let p = gen.generate(&mut rng);
        let c = random_clustering(&p, 8, &mut rng).unwrap();
        let g = ClusteredProblemGraph::new(p, c).unwrap();
        let start = Assignment::random(8, &mut rng);
        let t0 =
            crate::evaluate::evaluate_assignment(&g, &sys, &start, EvaluationModel::Precedence)
                .unwrap()
                .total();
        let cfg = ParallelRefineConfig::new(64, 4, RefineConfig::paper(8));
        let out = parallel_refine(&g, &sys, &start, &[false; 8], 1, &cfg, 11).unwrap();
        assert!(out.total <= t0);
        assert!(
            out.iterations_used <= 64 + 4 * 8,
            "budget roughly respected"
        );
    }

    #[test]
    fn early_stop_when_start_is_optimal() {
        let g = paper::worked_example();
        let sys = ring(4).unwrap();
        let opt = Assignment::from_sys_of(paper::WORKED_OPTIMAL_ASSIGNMENT.to_vec()).unwrap();
        let cfg = ParallelRefineConfig::new(1000, 4, RefineConfig::paper(4));
        let out = parallel_refine(&g, &sys, &opt, &[false; 4], 14, &cfg, 1).unwrap();
        assert!(out.reached_lower_bound);
        assert_eq!(out.iterations_used, 0);
    }
}

//! Critical problem edges, critical abstract edges and critical degrees
//! (§2.1 terms 2–5, §4.2 algorithms I–III).
//!
//! An ideal edge is **critical** when any increase of the corresponding
//! clustered weight must lengthen the total time: by Theorems 1–2 that is
//! exactly the zero-slack (`i_edge == clus_edge`) edges lying on a
//! zero-slack path to a *latest task*, found by backwards propagation
//! from the latest-task set. Summing critical problem edges per cluster
//! pair yields the **critical abstract edge** matrix `c_abs_edge`; its
//! row sums are the **critical degrees** that rank clusters during the
//! initial assignment.

use serde::{Deserialize, Serialize};

use mimd_graph::matrix::SquareMatrix;
use mimd_graph::Weight;
use mimd_taskgraph::{ClusterId, ClusteredProblemGraph, TaskId};

use crate::ideal::IdealSchedule;

/// How criticality propagates backwards from the latest tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CriticalityMode {
    /// §4.2 Algorithm I verbatim: from a task in the worklist, examine
    /// only its predecessors *in the clustered problem graph* (i.e.
    /// across clusters). Zero-slack intra-cluster chains do not
    /// propagate.
    PaperExact,
    /// Extension (ablation A2): zero-slack *intra-cluster* precedence
    /// also propagates the worklist (delays travel through a cluster's
    /// internal chain just as surely), potentially marking more
    /// cross-cluster edges critical.
    Extended,
}

/// The output of the critical-edge analysis.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalAnalysis {
    mode: CriticalityMode,
    /// Critical problem edges `(u, v, clustered weight)`.
    critical_edges: Vec<(TaskId, TaskId, Weight)>,
    /// Symmetric `c_abs_edge[na][na]` (without the paper's appended
    /// degree column; see [`CriticalAnalysis::critical_degree`]).
    c_abs: SquareMatrix<Weight>,
    /// Row sums of `c_abs` — the paper's last column of
    /// `c_abs_edge[na][na+1]`.
    degrees: Vec<Weight>,
}

impl CriticalAnalysis {
    /// Run §4.2 algorithms I–III on an ideal schedule.
    pub fn analyze(
        graph: &ClusteredProblemGraph,
        ideal: &IdealSchedule,
        mode: CriticalityMode,
    ) -> Self {
        let problem = graph.problem();
        let np = problem.len();
        let mut in_worklist = vec![false; np];
        let mut stack: Vec<TaskId> = Vec::new();
        for t in ideal.latest_tasks() {
            in_worklist[t] = true;
            stack.push(t);
        }
        let mut is_critical = SquareMatrix::<bool>::new(np);
        let mut critical_edges = Vec::new();
        while let Some(v) = stack.pop() {
            for &(u, _) in problem.predecessors(v) {
                let w = graph.clus_weight(u, v);
                if w > 0 {
                    // Cross-cluster edge: critical iff zero slack.
                    if ideal.ideal_edge(u, v) == w && !is_critical.get(u, v) {
                        is_critical.set(u, v, true);
                        critical_edges.push((u, v, w));
                        if !in_worklist[u] {
                            in_worklist[u] = true;
                            stack.push(u);
                        }
                    }
                } else if mode == CriticalityMode::Extended
                    && graph.clustering().same_cluster(u, v)
                    && ideal.ideal_edge(u, v) == 0
                    && !in_worklist[u]
                {
                    // Zero-slack intra-cluster dependency: propagate the
                    // worklist without marking an edge (it has no
                    // clustered weight to be critical).
                    in_worklist[u] = true;
                    stack.push(u);
                }
            }
        }
        critical_edges.sort_unstable();

        // Algorithm II: aggregate into the critical abstract edge matrix.
        let na = graph.num_clusters();
        let mut c_abs = SquareMatrix::<Weight>::new(na);
        for &(u, v, w) in &critical_edges {
            let (a, b) = (graph.cluster_of(u), graph.cluster_of(v));
            let cur = c_abs.get(a, b);
            c_abs.set(a, b, cur + w);
            let cur = c_abs.get(b, a);
            c_abs.set(b, a, cur + w);
        }
        // Algorithm III: critical degrees = row sums.
        let degrees: Vec<Weight> = (0..na).map(|a| c_abs.row(a).iter().sum()).collect();

        CriticalAnalysis {
            mode,
            critical_edges,
            c_abs,
            degrees,
        }
    }

    /// The propagation mode used.
    pub fn mode(&self) -> CriticalityMode {
        self.mode
    }

    /// Critical problem edges, sorted by `(u, v)` (the paper's
    /// `crit_edge[np][np]` matrix in sparse form).
    pub fn critical_edges(&self) -> &[(TaskId, TaskId, Weight)] {
        &self.critical_edges
    }

    /// `true` iff the edge `u -> v` is critical.
    pub fn is_critical_edge(&self, u: TaskId, v: TaskId) -> bool {
        self.critical_edges
            .binary_search_by(|&(a, b, _)| (a, b).cmp(&(u, v)))
            .is_ok()
    }

    /// Weight of the critical abstract edge between clusters `a` and `b`
    /// (0 when not critical) — the paper's `c_abs_edge[a][b]`.
    #[inline]
    pub fn critical_abstract_weight(&self, a: ClusterId, b: ClusterId) -> Weight {
        self.c_abs.get(a, b)
    }

    /// `true` iff clusters `a` and `b` share a critical abstract edge.
    #[inline]
    pub fn is_critical_abstract_edge(&self, a: ClusterId, b: ClusterId) -> bool {
        self.c_abs.get(a, b) > 0
    }

    /// Critical degree of cluster `a` (§2.1 term 4; last column of the
    /// paper's `c_abs_edge[na][na+1]`).
    #[inline]
    pub fn critical_degree(&self, a: ClusterId) -> Weight {
        self.degrees[a]
    }

    /// All critical degrees.
    pub fn critical_degrees(&self) -> &[Weight] {
        &self.degrees
    }

    /// Clusters that touch at least one critical abstract edge — step 2
    /// of the initial assignment must visit exactly these.
    pub fn clusters_with_critical_edges(&self) -> Vec<ClusterId> {
        (0..self.degrees.len())
            .filter(|&a| self.degrees[a] > 0)
            .collect()
    }

    /// Clusters sorted by descending critical degree, ties by ascending
    /// id.
    pub fn by_descending_critical_degree(&self) -> Vec<ClusterId> {
        let mut ids: Vec<ClusterId> = (0..self.degrees.len()).collect();
        ids.sort_by_key(|&a| (std::cmp::Reverse(self.degrees[a]), a));
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_taskgraph::paper;

    fn analyzed(mode: CriticalityMode) -> (ClusteredProblemGraph, CriticalAnalysis) {
        let g = paper::worked_example();
        let ideal = IdealSchedule::derive(&g);
        let a = CriticalAnalysis::analyze(&g, &ideal, mode);
        (g, a)
    }

    #[test]
    fn worked_example_critical_edges_match_fig22c() {
        let (_, a) = analyzed(CriticalityMode::PaperExact);
        assert_eq!(a.critical_edges(), &paper::WORKED_CRITICAL_EDGES);
        assert!(a.is_critical_edge(6, 8), "ei79");
        assert!(!a.is_critical_edge(4, 8), "ei59 has slack 2");
    }

    #[test]
    fn worked_example_cabs_matches_fig20b() {
        let (_, a) = analyzed(CriticalityMode::PaperExact);
        assert_eq!(a.critical_abstract_weight(0, 1), 3);
        assert_eq!(a.critical_abstract_weight(0, 2), 6);
        assert_eq!(a.critical_abstract_weight(1, 2), 0);
        assert_eq!(a.critical_abstract_weight(2, 0), 6, "symmetric");
        assert!(a.is_critical_abstract_edge(0, 1));
        assert!(!a.is_critical_abstract_edge(1, 3));
    }

    #[test]
    fn worked_example_degrees_match() {
        let (_, a) = analyzed(CriticalityMode::PaperExact);
        assert_eq!(a.critical_degrees(), &paper::WORKED_CRITICAL_DEGREES);
        assert_eq!(a.by_descending_critical_degree(), vec![0, 2, 1, 3]);
        assert_eq!(a.clusters_with_critical_edges(), vec![0, 1, 2]);
    }

    #[test]
    fn extended_mode_finds_superset() {
        let (_, exact) = analyzed(CriticalityMode::PaperExact);
        let (_, ext) = analyzed(CriticalityMode::Extended);
        for &(u, v, _) in exact.critical_edges() {
            assert!(ext.is_critical_edge(u, v), "({u},{v}) lost in Extended");
        }
        assert_eq!(ext.mode(), CriticalityMode::Extended);
    }

    #[test]
    fn extended_mode_propagates_through_clusters() {
        // Chain: 1 -(cross w2)-> 2 -(intra)-> 3 -(cross w1)-> 4 (latest).
        // PaperExact: from 4, pred 3's cross edge (3,4) is tight ->
        // critical; from 3, pred 2 is intra so clus_weight = 0 and the
        // worklist stalls — (1,2) is never examined. Extended follows the
        // tight intra edge and marks (1,2).
        use mimd_taskgraph::{Clustering, ProblemGraph};
        let p = ProblemGraph::from_paper_edges(&[1, 1, 1, 1], &[(1, 2, 2), (2, 3, 9), (3, 4, 1)])
            .unwrap();
        let c = Clustering::new(vec![0, 1, 1, 2]).unwrap();
        let g = ClusteredProblemGraph::new(p, c).unwrap();
        let ideal = IdealSchedule::derive(&g);
        let exact = CriticalAnalysis::analyze(&g, &ideal, CriticalityMode::PaperExact);
        let ext = CriticalAnalysis::analyze(&g, &ideal, CriticalityMode::Extended);
        assert!(exact.is_critical_edge(2, 3));
        assert!(
            !exact.is_critical_edge(0, 1),
            "paper-exact stalls at the cluster"
        );
        assert!(ext.is_critical_edge(0, 1), "extended propagates through");
    }

    #[test]
    fn no_critical_edges_when_no_cross_edges() {
        use mimd_taskgraph::{Clustering, ProblemGraph};
        let p = ProblemGraph::from_paper_edges(&[1, 1], &[(1, 2, 3)]).unwrap();
        // Both tasks in cluster 0 of 2 — need a second non-empty cluster,
        // so use a 3-task variant.
        let p3 = ProblemGraph::from_paper_edges(&[1, 1, 5], &[(1, 2, 3)]).unwrap();
        let c = Clustering::new(vec![0, 0, 1]).unwrap();
        let g = ClusteredProblemGraph::new(p3, c).unwrap();
        let ideal = IdealSchedule::derive(&g);
        let a = CriticalAnalysis::analyze(&g, &ideal, CriticalityMode::PaperExact);
        assert!(a.critical_edges().is_empty());
        assert_eq!(a.critical_degrees(), &[0, 0]);
        assert!(a.clusters_with_critical_edges().is_empty());
        drop(p);
    }
}

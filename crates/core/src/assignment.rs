//! The assignment of abstract nodes (clusters) to system nodes
//! (processors) — the paper's `assi[ns]` matrix, kept in both directions.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mimd_graph::error::GraphError;

/// A bijection between `n` clusters and `n` processors.
///
/// The paper stores `assi[s] = a` ("abstract node `a` is mapped to system
/// node `s`"); we keep the inverse too so both lookups are `O(1)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// `sys_of[a]` = processor hosting cluster `a`.
    sys_of: Vec<usize>,
    /// `cluster_of[s]` = cluster hosted on processor `s` (the paper's
    /// `assi`).
    cluster_of: Vec<usize>,
}

impl Assignment {
    /// Identity assignment: cluster `i` on processor `i`.
    pub fn identity(n: usize) -> Self {
        Assignment {
            sys_of: (0..n).collect(),
            cluster_of: (0..n).collect(),
        }
    }

    /// Build from `sys_of[a] = processor`; must be a permutation of
    /// `0..n`.
    pub fn from_sys_of(sys_of: Vec<usize>) -> Result<Self, GraphError> {
        let n = sys_of.len();
        let mut cluster_of = vec![usize::MAX; n];
        for (a, &s) in sys_of.iter().enumerate() {
            if s >= n {
                return Err(GraphError::NodeOutOfRange { node: s, len: n });
            }
            if cluster_of[s] != usize::MAX {
                return Err(GraphError::InvalidParameter(format!(
                    "processor {s} assigned twice"
                )));
            }
            cluster_of[s] = a;
        }
        Ok(Assignment { sys_of, cluster_of })
    }

    /// Build from the paper's `assi[s] = cluster` orientation.
    pub fn from_assi(assi: Vec<usize>) -> Result<Self, GraphError> {
        let inv = Assignment::from_sys_of(assi)?;
        // `from_sys_of` interpreted the vector as cluster→sys; swap views.
        Ok(Assignment {
            sys_of: inv.cluster_of,
            cluster_of: inv.sys_of,
        })
    }

    /// Uniformly random assignment.
    pub fn random(n: usize, rng: &mut impl Rng) -> Self {
        let mut sys_of: Vec<usize> = (0..n).collect();
        crate::shuffle::fisher_yates(&mut sys_of, rng);
        Assignment::from_sys_of(sys_of).expect("shuffle of identity is a permutation")
    }

    /// Number of clusters / processors.
    #[inline]
    pub fn len(&self) -> usize {
        self.sys_of.len()
    }

    /// `true` iff the assignment is empty.
    pub fn is_empty(&self) -> bool {
        self.sys_of.is_empty()
    }

    /// Processor hosting cluster `a`.
    #[inline]
    pub fn sys_of(&self, a: usize) -> usize {
        self.sys_of[a]
    }

    /// Cluster hosted on processor `s` (the paper's `assi[s]`).
    #[inline]
    pub fn cluster_of(&self, s: usize) -> usize {
        self.cluster_of[s]
    }

    /// The cluster→processor vector.
    pub fn sys_of_vec(&self) -> &[usize] {
        &self.sys_of
    }

    /// The paper's `assi[ns]` vector (processor→cluster).
    pub fn assi_vec(&self) -> &[usize] {
        &self.cluster_of
    }

    /// Swap the processors of clusters `a` and `b` (pairwise exchange —
    /// the refinement alternative the paper compares against).
    pub fn swap_clusters(&mut self, a: usize, b: usize) {
        let (sa, sb) = (self.sys_of[a], self.sys_of[b]);
        self.sys_of[a] = sb;
        self.sys_of[b] = sa;
        self.cluster_of[sa] = b;
        self.cluster_of[sb] = a;
    }

    /// Raw single-cluster write used by the delta evaluator's staged
    /// moves and their rollback: put cluster `a` on processor `s`,
    /// updating both directions without validating bijectivity. The
    /// caller applies a *set* of moves whose processors permute among
    /// themselves, which restores the invariant once every write lands
    /// (the same contract as [`Assignment::place_subset`]).
    #[inline]
    pub(crate) fn place(&mut self, a: usize, s: usize) {
        self.sys_of[a] = s;
        self.cluster_of[s] = a;
    }

    /// Re-place a subset of clusters onto a set of processors (used by
    /// the paper's refinement: "randomly assign the non-critical abstract
    /// nodes to the system nodes which are not occupied by critical
    /// abstract nodes"). `clusters` and `processors` must have equal
    /// length; `perm[i]` places `clusters[i]` on `processors[perm[i]]`.
    pub fn place_subset(&mut self, clusters: &[usize], processors: &[usize], perm: &[usize]) {
        assert_eq!(clusters.len(), processors.len(), "subset sizes must match");
        assert_eq!(clusters.len(), perm.len(), "permutation size must match");
        for (&a, &pi) in clusters.iter().zip(perm) {
            let s = processors[pi];
            self.sys_of[a] = s;
            self.cluster_of[s] = a;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_and_lookups() {
        let a = Assignment::identity(4);
        assert_eq!(a.len(), 4);
        assert_eq!(a.sys_of(2), 2);
        assert_eq!(a.cluster_of(3), 3);
    }

    #[test]
    fn from_sys_of_inverts() {
        let a = Assignment::from_sys_of(vec![2, 0, 1]).unwrap();
        assert_eq!(a.sys_of(0), 2);
        assert_eq!(a.cluster_of(2), 0);
        assert_eq!(a.cluster_of(0), 1);
        assert_eq!(a.assi_vec(), &[1, 2, 0]);
    }

    #[test]
    fn from_assi_matches_paper_orientation() {
        // Paper Fig 23-b: assi = (0 1 3 2): sys2 hosts cluster 3.
        let a = Assignment::from_assi(vec![0, 1, 3, 2]).unwrap();
        assert_eq!(a.cluster_of(2), 3);
        assert_eq!(a.sys_of(3), 2);
        assert_eq!(a.sys_of(2), 3);
        assert_eq!(a.sys_of_vec(), &[0, 1, 3, 2]);
    }

    #[test]
    fn rejects_non_permutations() {
        assert!(Assignment::from_sys_of(vec![0, 0]).is_err());
        assert!(Assignment::from_sys_of(vec![0, 2]).is_err());
    }

    #[test]
    fn random_is_permutation_and_seeded() {
        let a = Assignment::random(20, &mut StdRng::seed_from_u64(1));
        let b = Assignment::random(20, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
        let mut seen = [false; 20];
        for c in 0..20 {
            seen[a.sys_of(c)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn swap_maintains_bijection() {
        let mut a = Assignment::identity(5);
        a.swap_clusters(1, 3);
        assert_eq!(a.sys_of(1), 3);
        assert_eq!(a.sys_of(3), 1);
        assert_eq!(a.cluster_of(3), 1);
        assert_eq!(a.cluster_of(1), 3);
    }

    #[test]
    fn place_subset_reassigns() {
        let mut a = Assignment::identity(5);
        // Clusters 1, 3 re-placed onto processors {3, 1} with perm [1, 0]:
        // cluster 1 -> processors[1] = 1... use a real permutation.
        a.place_subset(&[1, 3], &[1, 3], &[1, 0]);
        assert_eq!(a.sys_of(1), 3);
        assert_eq!(a.sys_of(3), 1);
        assert_eq!(a.cluster_of(1), 3);
    }

    #[test]
    #[should_panic(expected = "subset sizes")]
    fn place_subset_validates_lengths() {
        let mut a = Assignment::identity(3);
        a.place_subset(&[0, 1], &[0], &[0, 1]);
    }
}

//! The one Fisher–Yates shuffle every randomized component shares.
//!
//! Refinement (`refine`), the multilevel batched smoother and
//! [`Assignment::random`](crate::Assignment::random) all permute a slice
//! with the same classic descending-index loop. Keeping the loop in one
//! place pins the **RNG call sequence** — one `gen_range(0..=i)` per
//! index `i` from `len - 1` down to `1` — which the determinism goldens
//! depend on: any reordering of the draws would silently shift every
//! seeded result in the repo.

use rand::Rng;

/// Shuffle `xs` in place with the Fisher–Yates algorithm, drawing
/// exactly `xs.len().saturating_sub(1)` values from `rng` (one
/// `gen_range(0..=i)` per `i` in `(1..len).rev()`). Empty and
/// single-element slices consume no randomness.
#[inline]
pub fn fisher_yates<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_the_historic_inline_loop() {
        // The exact loop previously duplicated in refine() and
        // Assignment::random — byte-identical draws, byte-identical
        // permutation.
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let mut a: Vec<usize> = (0..17).collect();
        let mut b: Vec<usize> = (0..17).collect();
        fisher_yates(&mut a, &mut rng_a);
        for i in (1..b.len()).rev() {
            let j = rng_b.gen_range(0..=i);
            b.swap(i, j);
        }
        assert_eq!(a, b);
        // Both RNGs sit at the same stream position afterwards.
        assert_eq!(rng_a.gen_range(0..1_000_000), rng_b.gen_range(0..1_000_000));
    }

    #[test]
    fn short_slices_consume_no_randomness() {
        let mut rng = StdRng::seed_from_u64(7);
        let before = rng.gen_range(0..u64::MAX);
        let mut rng = StdRng::seed_from_u64(7);
        fisher_yates(&mut [0usize; 0], &mut rng);
        fisher_yates(&mut [1usize], &mut rng);
        assert_eq!(rng.gen_range(0..u64::MAX), before);
    }

    #[test]
    fn produces_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<usize> = (0..50).collect();
        fisher_yates(&mut xs, &mut rng);
        let mut seen = [false; 50];
        for &x in &xs {
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Offline-compatible subset of `serde_json`: a strict JSON parser and
//! printer over the [`serde`] stub's [`Value`] tree.
//!
//! Output is deterministic: object keys keep their declaration order and
//! floats print via Rust's shortest round-trip formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error produced by parsing or conversion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse a JSON string into a raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), write_value),
        Value::Obj(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, val), i, d| {
                write_string(o, k);
                o.push(':');
                if i.is_some() {
                    o.push(' ');
                }
                write_value(o, val, i, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // Keep floats recognizably floats (serde_json prints 1.0, not 1).
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; upstream emits null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (cursor on 'u'), handling
    /// surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // consume 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            if !self.eat_literal("\\u") {
                return Err(self.err("unpaired surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
                // Magnitude exceeds i64: fall through to f64, like
                // upstream serde_json.
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for json in ["null", "true", "false", "0", "42", "-17", "1.5", "\"hi\""] {
            let v = parse_value(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json, "{json}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let json = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":[true,false],"e":-2.5}"#;
        let v = parse_value(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn pretty_printing_is_indented() {
        let v = parse_value(r#"{"a":[1],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn float_formatting_round_trips() {
        let v = Value::Float(0.1);
        let s = to_string(&v).unwrap();
        assert_eq!(parse_value(&s).unwrap(), v);
        assert_eq!(to_string(&Value::Float(2.0)).unwrap(), "2.0");
    }

    #[test]
    fn oversized_integers_fall_back_to_float() {
        // Magnitude fits u64 but not i64: valid JSON, parsed as f64.
        let v = parse_value("-9300000000000000000").unwrap();
        assert_eq!(v, Value::Float(-9.3e18));
        // Beyond u64 as well.
        let v = parse_value("99999999999999999999999").unwrap();
        assert!(matches!(v, Value::Float(f) if f > 9e22));
        assert_eq!(parse_value("-5").unwrap(), Value::Int(-5));
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value(r#""Aé😀""#).unwrap();
        assert_eq!(v, Value::Str("Aé😀".to_string()));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{not json").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value("\"unterminated").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<u64> = from_str("[1,2,3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        let pair: (u64, f64) = from_str("[7,2.5]").unwrap();
        assert_eq!(pair, (7, 2.5));
    }
}

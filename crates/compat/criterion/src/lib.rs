//! Offline-compatible subset of `criterion`.
//!
//! A plain wall-clock micro-benchmark harness with criterion's API
//! shape (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `Bencher::iter`). No statistics beyond mean/min over samples —
//! enough to compare implementations and spot regressions offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (recorded, shown in output).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name + parameter.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// (mean, min) per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Time `routine`, first calibrating an iteration count so one
    /// sample takes a measurable amount of time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find how many iterations fill ~5ms.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters_per_sample >= (1 << 20) {
                break;
            }
            iters_per_sample *= 4;
        }

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let sample = start.elapsed() / u32::try_from(iters_per_sample).unwrap_or(u32::MAX);
            total += sample;
            min = min.min(sample);
        }
        let mean = total / u32::try_from(self.samples).unwrap_or(1);
        self.result = Some((mean, min));
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(name, sample_size, None, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Configure samples per benchmark (criterion builder method).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Run one benchmark that receives an input by reference.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (separator line in the output).
    pub fn finish(self) {
        println!();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: sample_size.max(1),
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean, min)) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                    format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
                }
                Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                    format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
                }
                _ => String::new(),
            };
            println!("{name:<60} mean {mean:>12?}  min {min:>12?}{rate}");
        }
        None => println!("{name:<60} (no measurement)"),
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(2).throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("sum", 4), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("id", "x"), &5u64, |b, &n| b.iter(|| n * 2));
        group.finish();
    }
}

//! Offline-compatible `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Implemented directly on `proc_macro` tokens (the environment has no
//! syn/quote). Supports the shapes this workspace uses:
//!
//! * structs with named fields, including plain type generics;
//! * enums with unit and struct variants, externally tagged by default;
//! * container attribute `#[serde(tag = "...", rename_all = "snake_case")]`
//!   for internally tagged enums;
//! * field attribute `#[serde(default)]` (missing key deserializes to
//!   `Default::default()`).
//!
//! Generated code targets the value-tree model of the sibling `serde`
//! stub (`to_value`/`from_value`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item, Mode::Serialize).parse().unwrap()
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item, Mode::Deserialize).parse().unwrap()
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Item {
    name: String,
    generics: Vec<String>,
    body: Body,
    /// `#[serde(tag = "...")]` container attribute.
    tag: Option<String>,
    /// `#[serde(rename_all = "snake_case")]` container attribute.
    snake_case: bool,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `#[serde(default)]`: a missing key becomes `Default::default()`.
    default: bool,
}

struct Variant {
    name: String,
    /// `None` for unit variants, fields for struct variants.
    fields: Option<Vec<Field>>,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let (tag, snake_case) = parse_container_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    let generics = parse_generics(&tokens, &mut pos);

    let body_group = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde derive: expected {{...}} body for {name}, found {other:?}"),
    };

    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_named_fields(body_group)),
        "enum" => Body::Enum(parse_variants(body_group)),
        other => panic!("serde derive: unsupported item kind '{other}'"),
    };

    Item {
        name,
        generics,
        body,
        tag,
        snake_case,
    }
}

/// Scan leading `#[...]` attributes, extracting serde container options.
fn parse_container_attrs(tokens: &[TokenTree], pos: &mut usize) -> (Option<String>, bool) {
    let mut tag = None;
    let mut snake_case = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) else {
            break;
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    parse_serde_args(args.stream(), &mut tag, &mut snake_case);
                }
            }
        }
        *pos += 2;
    }
    (tag, snake_case)
}

fn parse_serde_args(stream: TokenStream, tag: &mut Option<String>, snake_case: &mut bool) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            other => panic!("serde derive: unexpected token {other} in #[serde(...)]"),
        };
        let value = match (tokens.get(i + 1), tokens.get(i + 2)) {
            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
                i += 3;
                Some(unquote(&lit.to_string()))
            }
            _ => {
                i += 1;
                None
            }
        };
        match (key.as_str(), value) {
            ("tag", Some(v)) => *tag = Some(v),
            ("rename_all", Some(v)) if v == "snake_case" => *snake_case = true,
            (other, v) => panic!(
                "serde derive: unsupported attribute serde({other} = {v:?}); \
                 this offline stub supports only tag/rename_all=snake_case"
            ),
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Skip inner attributes and `pub` / `pub(...)` visibility markers.
fn skip_attrs_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    scan_attrs_and_visibility(tokens, pos);
}

/// Like [`skip_attrs_and_visibility`], but reports whether one of the
/// skipped attributes was `#[serde(default)]`.
fn scan_attrs_and_visibility(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut default = false;
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                        (inner.first(), inner.get(1))
                    {
                        if id.to_string() == "serde"
                            && args.stream().into_iter().any(
                                |t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "default"),
                            )
                        {
                            default = true;
                        }
                    }
                }
                *pos += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1;
                    }
                }
            }
            _ => return default,
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    skip_attrs_and_visibility(tokens, pos);
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde derive: expected identifier, found {other:?}"),
    }
}

/// Parse `<...>` after the type name, returning the plain type parameter
/// names (bounds are ignored; lifetimes and const params unsupported).
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *pos += 1;
    let mut params = Vec::new();
    let mut depth = 1usize;
    let mut expecting_param = true;
    while depth > 0 {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                expecting_param = true;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                panic!("serde derive: lifetime generics are not supported by this stub")
            }
            Some(TokenTree::Ident(id)) if expecting_param && depth == 1 => {
                if id.to_string() == "const" {
                    panic!("serde derive: const generics are not supported by this stub");
                }
                params.push(id.to_string());
                expecting_param = false;
            }
            Some(_) => {}
            None => panic!("serde derive: unterminated generic parameter list"),
        }
        *pos += 1;
    }
    params
}

/// Parse `name: Type, ...` named fields from a brace group's stream.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let default = scan_attrs_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde derive: expected ':' after field '{name}', found {other:?}"),
        }
        fields.push(Field { name, default });
        // Consume the type: everything until a comma at angle depth 0.
        let mut angle_depth = 0usize;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Parse enum variants (unit or struct-bodied) from a brace group.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => panic!(
                "serde derive: tuple variant '{name}' is not supported by this stub; \
                 use a struct variant"
            ),
            _ => None,
        };
        // Skip a discriminant (`= expr`) if present, then the comma.
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn to_snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn generate(item: &Item, mode: Mode) -> String {
    let name = &item.name;
    let (impl_generics, ty_generics) = if item.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let bound = match mode {
            Mode::Serialize => "::serde::Serialize",
            Mode::Deserialize => "::serde::Deserialize",
        };
        let params: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", params.join(", ")),
            format!("<{}>", item.generics.join(", ")),
        )
    };

    let body = match (&item.body, mode) {
        (Body::Struct(fields), Mode::Serialize) => gen_struct_ser(fields),
        (Body::Struct(fields), Mode::Deserialize) => gen_struct_de(name, fields),
        (Body::Enum(variants), Mode::Serialize) => gen_enum_ser(item, variants),
        (Body::Enum(variants), Mode::Deserialize) => gen_enum_de(item, variants),
    };

    match mode {
        Mode::Serialize => format!(
            "#[automatically_derived]\n\
             impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
             }}"
        ),
        Mode::Deserialize => format!(
            "#[automatically_derived]\n\
             impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
                 fn from_value(v: &::serde::Value) \
                    -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
             }}"
        ),
    }
}

/// The deserialization initializer for one field: plain fields error on
/// a missing key, `#[serde(default)]` fields fall back to `Default`.
fn de_init(f: &Field) -> String {
    let name = &f.name;
    if f.default {
        format!("{name}: ::serde::field_or_default(obj, \"{name}\")?")
    } else {
        format!("{name}: ::serde::field(obj, \"{name}\")?")
    }
}

fn gen_struct_ser(fields: &[Field]) -> String {
    let pushes: Vec<String> = fields
        .iter()
        .map(|f| {
            let f = &f.name;
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&self.{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Obj(::std::vec![{}])", pushes.join(", "))
}

fn gen_struct_de(name: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = fields.iter().map(de_init).collect();
    format!(
        "let obj = v.as_obj().ok_or_else(|| \
            ::serde::DeError::expected(\"object for {name}\", v))?;\n\
         ::std::result::Result::Ok({name} {{ {} }})",
        inits.join(", ")
    )
}

fn gen_enum_ser(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let arms: Vec<String> = variants
        .iter()
        .map(|variant| {
            let vname = &variant.name;
            let label = if item.snake_case {
                to_snake_case(vname)
            } else {
                vname.clone()
            };
            match (&variant.fields, &item.tag) {
                (None, None) => format!(
                    "{name}::{vname} => \
                     ::serde::Value::Str(::std::string::String::from(\"{label}\")),"
                ),
                (None, Some(tag)) => format!(
                    "{name}::{vname} => ::serde::Value::Obj(::std::vec![\
                     (::std::string::String::from(\"{tag}\"), \
                      ::serde::Value::Str(::std::string::String::from(\"{label}\")))]),"
                ),
                (Some(fields), tag) => {
                    let bindings = fields
                        .iter()
                        .map(|f| f.name.clone())
                        .collect::<Vec<_>>()
                        .join(", ");
                    let field_pairs: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            let f = &f.name;
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}))"
                            )
                        })
                        .collect();
                    match tag {
                        Some(tag) => format!(
                            "{name}::{vname} {{ {bindings} }} => \
                             ::serde::Value::Obj(::std::vec![\
                             (::std::string::String::from(\"{tag}\"), \
                              ::serde::Value::Str(::std::string::String::from(\"{label}\"))), \
                             {}]),",
                            field_pairs.join(", ")
                        ),
                        None => format!(
                            "{name}::{vname} {{ {bindings} }} => \
                             ::serde::Value::Obj(::std::vec![\
                             (::std::string::String::from(\"{label}\"), \
                              ::serde::Value::Obj(::std::vec![{}]))]),",
                            field_pairs.join(", ")
                        ),
                    }
                }
            }
        })
        .collect();
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

fn gen_enum_de(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    if let Some(tag) = &item.tag {
        // Internally tagged: { "<tag>": "variant", ...fields }.
        let arms: Vec<String> = variants
            .iter()
            .map(|variant| {
                let vname = &variant.name;
                let label = if item.snake_case {
                    to_snake_case(vname)
                } else {
                    vname.clone()
                };
                match &variant.fields {
                    None => format!("\"{label}\" => ::std::result::Result::Ok({name}::{vname}),"),
                    Some(fields) => {
                        let inits: Vec<String> = fields.iter().map(de_init).collect();
                        format!(
                            "\"{label}\" => ::std::result::Result::Ok(\
                             {name}::{vname} {{ {} }}),",
                            inits.join(", ")
                        )
                    }
                }
            })
            .collect();
        format!(
            "let obj = v.as_obj().ok_or_else(|| \
                ::serde::DeError::expected(\"tagged object for {name}\", v))?;\n\
             let tag_value = v.get(\"{tag}\").and_then(::serde::Value::as_str)\
                .ok_or_else(|| ::serde::DeError(::std::format!(\
                    \"missing or non-string tag '{tag}' for {name}\")))?;\n\
             match tag_value {{\n{}\n\
                other => ::std::result::Result::Err(::serde::DeError(\
                    ::std::format!(\"unknown {name} variant '{{other}}'\"))),\n}}",
            arms.join("\n")
        )
    } else {
        // Externally tagged: "Variant" or { "Variant": { fields } }.
        let unit_arms: Vec<String> = variants
            .iter()
            .filter(|variant| variant.fields.is_none())
            .map(|variant| {
                let vname = &variant.name;
                let label = if item.snake_case {
                    to_snake_case(vname)
                } else {
                    vname.clone()
                };
                format!("\"{label}\" => return ::std::result::Result::Ok({name}::{vname}),")
            })
            .collect();
        let keyed_arms: Vec<String> = variants
            .iter()
            .filter_map(|variant| {
                let vname = &variant.name;
                let label = if item.snake_case {
                    to_snake_case(vname)
                } else {
                    vname.clone()
                };
                variant.fields.as_ref().map(|fields| {
                    let inits: Vec<String> = fields.iter().map(de_init).collect();
                    format!(
                        "\"{label}\" => {{\n\
                             let obj = inner.as_obj().ok_or_else(|| \
                                ::serde::DeError::expected(\
                                    \"object for {name}::{vname}\", inner))?;\n\
                             return ::std::result::Result::Ok({name}::{vname} {{ {} }});\n\
                         }}",
                        inits.join(", ")
                    )
                })
            })
            .collect();
        format!(
            "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                 match s {{\n{unit}\n_ => {{}}\n}}\n\
             }}\n\
             if let ::std::option::Option::Some(fields) = v.as_obj() {{\n\
                 if fields.len() == 1 {{\n\
                     let (key, inner) = &fields[0];\n\
                     match key.as_str() {{\n{keyed}\n_ => {{}}\n}}\n\
                 }}\n\
             }}\n\
             ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"unrecognized {name} value: expected a variant of {name}\")))",
            unit = unit_arms.join("\n"),
            keyed = keyed_arms.join("\n"),
        )
    }
}

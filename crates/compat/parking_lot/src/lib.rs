//! Offline-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! Provides the non-poisoning `lock()` ergonomics the codebase relies
//! on; a poisoned std lock is recovered instead of panicking, matching
//! parking_lot's behavior of not having poisoning at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}

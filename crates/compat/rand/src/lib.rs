//! Offline-compatible subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships its own implementation of the narrow surface the codebase uses:
//! [`RngCore`], [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng`]
//! and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but with the identical determinism
//! contract: the same seed always reproduces the same sequence on every
//! platform and thread count. Golden tests in this repository pin values
//! produced by *this* generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: uniformly random words.
pub trait RngCore {
    /// Next uniformly random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next uniformly random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience sampling methods on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `u64` -> uniform float in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening multiply (Lemire reduction).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
        const _: () = assert!(std::mem::size_of::<$t>() == std::mem::size_of::<$u>());
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it with SplitMix64 (same
    /// convention as upstream rand).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..1);
            assert_eq!(w, 0);
            let x: u64 = rng.gen_range(1..=9);
            assert!((1..=9).contains(&x));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&hits), "suspicious balance: {hits}");
    }

    #[test]
    fn fill_bytes_is_deterministic() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let (mut xs, mut ys) = ([0u8; 13], [0u8; 13]);
        a.fill_bytes(&mut xs);
        b.fill_bytes(&mut ys);
        assert_eq!(xs, ys);
    }

    #[test]
    fn trait_object_and_reborrow_work() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let v = takes_impl(&mut rng);
        assert!(v < 100);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let _ = dyn_rng.next_u32();
    }
}

//! Offline-compatible subset of `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]`
//! header, integer/float range strategies, and
//! [`prop::collection::vec`]. Cases are generated from a deterministic
//! per-test seed (FNV hash of the test name), so failures reproduce
//! exactly; there is no shrinking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Per-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic case generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from the test name so every test has its own stable stream.
    pub fn deterministic(test_name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Combinator strategies, mirroring proptest's `prop::` module tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generate vectors whose elements come from `element` and whose
        /// length is drawn uniformly from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.0.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Assert inside a property body (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The property-test block macro. Each contained function runs its body
/// once per configured case with arguments drawn from the given
/// strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut proptest_rng =
                $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in 2usize..5, f in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((2..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_length(values in prop::collection::vec(0usize..10, 0..7)) {
            prop_assert!(values.len() < 7);
            prop_assert!(values.iter().all(|&v| v < 10));
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0u8..3) {
            prop_assert!(x < 3, "got {x}");
            prop_assert_eq!(x as u64 * 2 / 2, x as u64);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = TestRng::deterministic("foo");
        let mut b = TestRng::deterministic("foo");
        let s = 0u64..1000;
        assert_eq!(s.clone().generate(&mut a), s.clone().generate(&mut b));
    }
}

//! Offline-compatible subset of `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the serialization surface the workspace needs: a JSON-shaped
//! [`Value`] tree, [`Serialize`]/[`Deserialize`] traits converting to
//! and from it, impls for the std types used in the codebase, and
//! re-exported derive macros (from the sibling `serde_derive` stub).
//!
//! Differences from upstream serde worth knowing:
//! * the data model is the concrete [`Value`] tree, not a visitor API;
//! * object key order is preserved (declaration order from derives), so
//!   serialized output is byte-stable;
//! * `Option<T>` fields tolerate a missing key (deserialized as `None`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the serialization data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (JSON number without fraction/exponent).
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with preserved key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object, if this is one.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable path + expectation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error for an unexpected value kind.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, found {}", got.kind()))
    }

    /// Prefix the error with a field/variant context.
    pub fn in_context(self, ctx: &str) -> DeError {
        DeError(format!("{ctx}: {}", self.0))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Convert `self` into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived code: fetch and deserialize a struct field.
/// A missing key deserializes from `Null` (so `Option` fields default
/// to `None`); non-optional types then produce a clear error.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| e.in_context(name)),
        None => T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field '{name}'"))),
    }
}

/// Like [`field`], but a missing key yields `T::default()` — the
/// behaviour of `#[serde(default)]` on a field.
pub fn field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| e.in_context(name)),
        None => Ok(T::default()),
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: u64 = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) if u <= i64::MAX as u64 => u as i64,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    ref other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single char, found '{s}'"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of {N} elements, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_arr().ok_or_else(|| DeError::expected("tuple array", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError(format!(
                        "expected tuple of {expected}, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hash order.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_value(&Some(3u64).to_value()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn field_helper_handles_missing_optionals() {
        let obj = vec![("a".to_string(), Value::UInt(1))];
        assert_eq!(field::<u64>(&obj, "a").unwrap(), 1);
        assert_eq!(field::<Option<u64>>(&obj, "b").unwrap(), None);
        assert!(field::<u64>(&obj, "b").is_err());
    }

    #[test]
    fn type_mismatches_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(Vec::<u64>::from_value(&Value::Bool(true)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }
}

//! Exercises the serde_derive stub on the item shapes the workspace uses.

use serde::{Deserialize, Serialize, Value};

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Plain {
    /// Doc comments must be skipped by the derive parser.
    pub count: u64,
    pub name: String,
    pub ratio: f64,
    pub flags: Vec<bool>,
    pub window: Option<usize>,
    pub weights: (u64, u64),
}

#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Generic<T> {
    n: usize,
    data: Vec<T>,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Nested {
    inner: Plain,
    grid: Generic<u32>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnitEnum {
    Alpha,
    BetaGamma,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ExternalEnum {
    Nothing,
    Boxed { size: u64, label: String },
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TaggedEnum {
    Hypercube { dim: u32 },
    Mesh { rows: usize, cols: usize },
    BinaryTree { n: usize },
    Flat,
}

fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: &T) {
    let tree = value.to_value();
    let back = T::from_value(&tree).unwrap();
    assert_eq!(&back, value);
}

fn sample_plain() -> Plain {
    Plain {
        count: 7,
        name: "x".into(),
        ratio: 0.25,
        flags: vec![true, false],
        window: None,
        weights: (2, 12),
    }
}

#[test]
fn struct_roundtrips_and_preserves_field_order() {
    let p = sample_plain();
    roundtrip(&p);
    let Value::Obj(fields) = p.to_value() else {
        panic!("expected object")
    };
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        ["count", "name", "ratio", "flags", "window", "weights"]
    );
}

#[test]
fn generic_and_nested_structs_roundtrip() {
    let g = Generic {
        n: 2,
        data: vec![1u32, 2, 3, 4],
    };
    roundtrip(&g);
    roundtrip(&Nested {
        inner: sample_plain(),
        grid: g,
    });
}

#[test]
fn unit_enums_serialize_as_strings() {
    roundtrip(&UnitEnum::Alpha);
    roundtrip(&UnitEnum::BetaGamma);
    assert_eq!(
        UnitEnum::BetaGamma.to_value(),
        Value::Str("BetaGamma".into())
    );
    assert!(UnitEnum::from_value(&Value::Str("Nope".into())).is_err());
}

#[test]
fn external_enum_struct_variant_roundtrips() {
    roundtrip(&ExternalEnum::Nothing);
    let b = ExternalEnum::Boxed {
        size: 9,
        label: "L".into(),
    };
    roundtrip(&b);
    let tree = b.to_value();
    assert!(tree.get("Boxed").is_some(), "externally tagged: {tree:?}");
}

#[test]
fn tagged_enum_uses_tag_and_snake_case() {
    let t = TaggedEnum::BinaryTree { n: 9 };
    roundtrip(&t);
    let tree = t.to_value();
    assert_eq!(
        tree.get("kind"),
        Some(&Value::Str("binary_tree".into())),
        "{tree:?}"
    );
    assert_eq!(tree.get("n"), Some(&Value::UInt(9)));
    roundtrip(&TaggedEnum::Hypercube { dim: 3 });
    roundtrip(&TaggedEnum::Mesh { rows: 2, cols: 5 });
    roundtrip(&TaggedEnum::Flat);
    assert!(TaggedEnum::from_value(&Value::Obj(vec![(
        "kind".into(),
        Value::Str("nope".into())
    )]))
    .is_err());
}

#[test]
fn missing_optional_field_is_none_and_missing_required_errors() {
    let mut tree = sample_plain().to_value();
    if let Value::Obj(fields) = &mut tree {
        fields.retain(|(k, _)| k != "window");
        let back = Plain::from_value(&tree).unwrap();
        assert_eq!(back.window, None);
        if let Value::Obj(fields) = &mut tree {
            fields.retain(|(k, _)| k != "count");
        }
        let err = Plain::from_value(&tree).unwrap_err();
        assert!(err.0.contains("count"), "{err}");
    } else {
        panic!("expected object");
    }
}

//! Facade crate: re-exports the whole MIMD mapping-strategy workspace.
pub use mimd_baselines as baselines;
pub use mimd_core as core;
pub use mimd_engine as engine;
pub use mimd_graph as graph;
pub use mimd_multilevel as multilevel;
pub use mimd_online as online;
pub use mimd_report as report;
pub use mimd_server as server;
pub use mimd_service as service;
pub use mimd_sim as sim;
pub use mimd_taskgraph as taskgraph;
pub use mimd_telemetry as telemetry;
pub use mimd_topology as topology;

//! Quickstart: map a random parallel program onto a hypercube.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The five-minute tour: generate a random task DAG, cluster it to the
//! machine size, run the paper's mapping strategy, and compare the
//! result against random placement and the provable lower bound.

use mimd::core::evaluate::random_mapping_average;
use mimd::core::schedule::EvaluationModel;
use mimd::core::Mapper;
use mimd::taskgraph::clustering::region::random_region_clustering;
use mimd::taskgraph::{ClusteredProblemGraph, GeneratorConfig, LayeredDagGenerator};
use mimd::topology::hypercube;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. A parallel program: 96 tasks with random weights, layered
    //    dependencies, stencil-like locality.
    let generator = LayeredDagGenerator::new(GeneratorConfig {
        tasks: 96,
        avg_width: 8,
        locality_window: Some(1),
        ..GeneratorConfig::default()
    })
    .expect("valid generator config");
    let program = generator.generate(&mut rng);
    println!(
        "program: {} tasks, {} dependencies, sequential time {}",
        program.len(),
        program.graph().edge_count(),
        program.sequential_time()
    );

    // 2. The machine: a 3-dimensional hypercube (8 processors).
    let machine = hypercube(3).expect("hypercube builds");
    println!(
        "machine: {} ({} processors, diameter {})",
        machine.name(),
        machine.len(),
        machine.diameter()
    );

    // 3. Cluster the program down to 8 groups (the paper assumes an
    //    existing clustering front-end; here: random contiguous regions).
    let clustering = random_region_clustering(&program, machine.len(), &mut rng).unwrap();
    let clustered = ClusteredProblemGraph::new(program, clustering).unwrap();
    println!(
        "clustered: {} clusters, {} cross-cluster edges",
        clustered.num_clusters(),
        clustered.cross_edges().count()
    );

    // 4. Map with the paper's strategy.
    let result = Mapper::new().map(&clustered, &machine, &mut rng).unwrap();
    println!(
        "\nmapping: total time {} vs lower bound {} ({:.1}% over)",
        result.total_time,
        result.lower_bound,
        result.percent_over_lower_bound() - 100.0
    );
    println!(
        "refinement: {} iterations, early termination: {}",
        result.refinement.iterations_used, result.refinement.reached_lower_bound
    );
    for cluster in 0..machine.len() {
        println!(
            "  cluster {cluster} -> processor {}",
            result.assignment.sys_of(cluster)
        );
    }

    // 5. How much did the strategy buy us over random placement?
    let (random_mean, _, _) = random_mapping_average(
        &clustered,
        &machine,
        EvaluationModel::Precedence,
        32,
        &mut rng,
    )
    .unwrap();
    println!(
        "\nrandom mapping averages {:.1} time units — the strategy saves {:.1}%",
        random_mean,
        100.0 * (random_mean - result.total_time as f64) / random_mean
    );
}

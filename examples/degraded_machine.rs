//! What the 1991 model cannot ask: how does a mapping behave when the
//! machine degrades?
//!
//! ```text
//! cargo run --example degraded_machine
//! ```
//!
//! The paper assumes "homogeneous processing elements" (§2.1). Real
//! machines lose that property — one node throttles, one link saturates.
//! This example maps a Gaussian-elimination DAG once, then replays the
//! *same* mapping in the simulator while degrading each processor in
//! turn, and finally with link contention, showing which processor the
//! schedule actually leans on (it is the one hosting the critical
//! chain).

use mimd::core::Mapper;
use mimd::report::Table;
use mimd::sim::{simulate, simulate_heterogeneous, SimConfig};
use mimd::taskgraph::clustering::sarkar::sarkar_clustering;
use mimd::taskgraph::workloads::gaussian_elimination;
use mimd::taskgraph::ClusteredProblemGraph;
use mimd::topology::hypercube;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2);
    let program = gaussian_elimination(12, 3, 5, 2).unwrap();
    let machine = hypercube(3).unwrap();
    let clustering = sarkar_clustering(&program, machine.len()).unwrap();
    let graph = ClusteredProblemGraph::new(program, clustering).unwrap();
    let result = Mapper::new().map(&graph, &machine, &mut rng).unwrap();

    let healthy = simulate(&graph, &machine, &result.assignment, SimConfig::paper()).unwrap();
    println!(
        "healthy machine: total {} (lower bound {}, provably optimal: {})\n",
        healthy.total,
        result.lower_bound,
        result.is_provably_optimal()
    );

    let mut table = Table::new(
        "degrading one processor to half speed (slowdown factor 2)",
        &["degraded processor", "total", "slowdown vs healthy"],
    );
    for p in 0..machine.len() {
        let mut slow = vec![1u32; machine.len()];
        slow[p] = 2;
        let run = simulate_heterogeneous(
            &graph,
            &machine,
            &result.assignment,
            SimConfig::paper(),
            &slow,
        )
        .unwrap();
        table.push_row(vec![
            format!("P{p}"),
            run.total.to_string(),
            format!("{:.2}x", run.total as f64 / healthy.total as f64),
        ]);
    }
    println!("{}", table.render());

    // The processors whose degradation hurts most are the ones carrying
    // the heaviest clusters — print the load map for comparison.
    println!("per-processor computation load (time units):");
    for p in 0..machine.len() {
        let cluster = result.assignment.cluster_of(p);
        let load: u64 = graph
            .clustering()
            .members(cluster)
            .iter()
            .map(|&t| graph.problem().size(t))
            .sum();
        println!("  P{p}: cluster {cluster}, load {load}");
    }

    let contended = simulate(&graph, &machine, &result.assignment, SimConfig::realistic()).unwrap();
    println!(
        "\nwith processor serialization + link contention: total {} ({:.2}x healthy, {} time units spent waiting for links)",
        contended.total,
        contended.total as f64 / healthy.total as f64,
        contended.link_wait_total
    );
}

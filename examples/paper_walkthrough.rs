//! The paper's worked example (Figs 2–6, 18–24), step by step.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```
//!
//! Walks the exact pipeline of the paper's Fig 1 on the reconstructed
//! 11-task instance: problem graph → clustered problem graph → abstract
//! graph → ideal graph (lower bound) → critical edges → initial
//! assignment → termination check, printing each published artifact.

use mimd::core::critical::{CriticalAnalysis, CriticalityMode};
use mimd::core::evaluate::evaluate_assignment;
use mimd::core::ideal::IdealSchedule;
use mimd::core::initial::initial_assignment;
use mimd::core::schedule::EvaluationModel;
use mimd::taskgraph::paper;
use mimd::taskgraph::AbstractGraph;
use mimd::topology::ring;

fn main() {
    // Fig 2/3: the problem graph, already clustered into 4 groups.
    let clustered = paper::worked_example();
    println!(
        "problem graph: {} tasks (paper numbers them 1-11)",
        clustered.num_tasks()
    );
    for c in 0..clustered.num_clusters() {
        let members: Vec<usize> = clustered
            .clustering()
            .members(c)
            .iter()
            .map(|&t| t + 1)
            .collect();
        println!("  cluster {c}: tasks {members:?}");
    }

    // Fig 4: the abstract graph.
    let abstract_graph = AbstractGraph::new(&clustered);
    println!(
        "\nabstract graph (mca per cluster): {:?}",
        abstract_graph.mca_vector()
    );

    // Fig 5/6: the 4-ring system graph and the ideal graph.
    let system = ring(4).unwrap();
    let ideal = IdealSchedule::derive(&clustered);
    println!("\nideal graph on the {} closure:", system.name());
    for t in 0..clustered.num_tasks() {
        println!(
            "  task {:2}: start {:2}, end {:2}",
            t + 1,
            ideal.schedule().start(t),
            ideal.schedule().end(t)
        );
    }
    println!(
        "lower bound (total time of the ideal graph): {}",
        ideal.lower_bound()
    );
    let latest: Vec<usize> = ideal.latest_tasks().iter().map(|&t| t + 1).collect();
    println!("latest tasks: {latest:?} (paper: 9 and 11)");

    // Fig 22-c / 20-b: critical edges and degrees.
    let critical = CriticalAnalysis::analyze(&clustered, &ideal, CriticalityMode::PaperExact);
    println!("\ncritical problem edges (paper ids):");
    for &(u, v, w) in critical.critical_edges() {
        println!("  ({},{}) weight {w}", u + 1, v + 1);
    }
    println!(
        "critical degrees per cluster: {:?}",
        critical.critical_degrees()
    );

    // §4.3.2: the initial assignment maps critical edges onto links.
    let init = initial_assignment(&clustered, &abstract_graph, &critical, &system).unwrap();
    println!(
        "\ninitial assignment (cluster -> processor): {:?}",
        init.assignment.sys_of_vec()
    );
    println!("pinned critical clusters: {:?}", init.critical);

    // §4.3.1: the termination condition fires immediately (Fig 24).
    let eval = evaluate_assignment(
        &clustered,
        &system,
        &init.assignment,
        EvaluationModel::Precedence,
    )
    .unwrap();
    println!("\ntotal time of the initial assignment: {}", eval.total());
    assert_eq!(eval.total(), ideal.lower_bound());
    println!(
        "== lower bound -> Theorem 3: the mapping is optimal; refinement is skipped entirely."
    );
}

//! Mapping Gaussian elimination onto a mesh — the workload of the
//! paper's citation [11] (Cosnard et al., "Parallel Gaussian Elimination
//! on an MIMD Computer").
//!
//! ```text
//! cargo run --example gaussian_elimination
//! ```
//!
//! Builds the pivot/update DAG for a 12×12 elimination, compares
//! clustering front-ends, maps with the paper's strategy and validates
//! the analytic total against the discrete-event simulator (including
//! the more realistic contention model the 1991 paper could not
//! express).

use mimd::core::evaluate::random_mapping_average;
use mimd::core::schedule::EvaluationModel;
use mimd::core::Mapper;
use mimd::sim::{simulate, SimConfig};
use mimd::taskgraph::clustering::comm_greedy::comm_greedy_clustering;
use mimd::taskgraph::clustering::region::random_region_clustering;
use mimd::taskgraph::workloads::gaussian_elimination;
use mimd::taskgraph::ClusteredProblemGraph;
use mimd::topology::mesh2d;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // The elimination DAG: pivots take 4 units, updates 6, messages 2.
    let program = gaussian_elimination(12, 4, 6, 2).unwrap();
    println!(
        "gaussian elimination n=12: {} tasks, {} edges, critical path {}",
        program.len(),
        program.graph().edge_count(),
        program.critical_path()
    );

    // A 3×3 mesh of processors.
    let machine = mesh2d(3, 3).unwrap();
    println!("machine: {}\n", machine.name());

    for (label, clustering) in [
        (
            "random regions",
            random_region_clustering(&program, machine.len(), &mut rng).unwrap(),
        ),
        (
            "comm-greedy",
            comm_greedy_clustering(&program, machine.len(), 1.5).unwrap(),
        ),
    ] {
        let clustered = ClusteredProblemGraph::new(program.clone(), clustering).unwrap();
        let result = Mapper::new().map(&clustered, &machine, &mut rng).unwrap();
        let (rand_mean, _, _) = random_mapping_average(
            &clustered,
            &machine,
            EvaluationModel::Precedence,
            32,
            &mut rng,
        )
        .unwrap();

        // Validate the analytic number in the simulator, then ask the
        // simulator what the 1991 model hides.
        let des = simulate(&clustered, &machine, &result.assignment, SimConfig::paper()).unwrap();
        assert_eq!(
            des.total, result.total_time,
            "DES must confirm the analytic model"
        );
        let realistic = simulate(
            &clustered,
            &machine,
            &result.assignment,
            SimConfig::realistic(),
        )
        .unwrap();

        println!("clustering: {label}");
        println!("  cut weight            : {}", clustered.total_cut_weight());
        println!("  lower bound           : {}", result.lower_bound);
        println!(
            "  strategy total        : {} ({:.1}% over LB, {} refinement iters)",
            result.total_time,
            result.percent_over_lower_bound() - 100.0,
            result.refinement.iterations_used
        );
        println!("  random mapping mean   : {rand_mean:.1}");
        println!(
            "  realistic simulation  : {} (serialized processors + link contention; {} msgs, mean {:.2} hops)",
            realistic.total,
            realistic.messages_sent,
            realistic.mean_hops()
        );
        println!();
    }
    println!("note how internalizing communication (comm-greedy) tightens both the bound and the schedule.");
}

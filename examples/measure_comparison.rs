//! §2.2 live: why total time, not cardinality or phased communication
//! cost.
//!
//! ```text
//! cargo run --example measure_comparison
//! ```
//!
//! Runs all three mapping objectives on the paper's two counterexample
//! instances (Figs 7–12 and 13–17) *and* on an FFT butterfly, showing
//! that the indirect measures pick assignments that lose wall-clock time
//! — the motivating observation of the paper.

use mimd::baselines::bokhari::{bokhari_mapping, cardinality};
use mimd::baselines::lee::{lee_cost, lee_mapping, phases_by_level};
use mimd::core::evaluate::evaluate_assignment;
use mimd::core::schedule::EvaluationModel;
use mimd::core::{Assignment, Mapper};
use mimd::report::Table;
use mimd::taskgraph::clustering::region::random_region_clustering;
use mimd::taskgraph::workloads::fft_butterfly;
use mimd::taskgraph::{paper, ClusteredProblemGraph};
use mimd::topology::hypercube;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let machine = hypercube(3).unwrap();

    // --- The paper's constructed §2.2 instances. -------------------------
    println!("=== the paper's constructed counterexamples ===\n");
    let bok = paper::bokhari_counterexample();
    let g = bok.singleton_clustered();
    let a1 = Assignment::from_sys_of(bok.indirect_optimal.clone()).unwrap();
    let a2 = Assignment::from_sys_of(bok.time_better.clone()).unwrap();
    println!(
        "Bokhari instance: cardinality-8 assignment runs in {} units, a cardinality-{} one in {}",
        evaluate_assignment(&g, &machine, &a1, EvaluationModel::Precedence)
            .unwrap()
            .total(),
        cardinality(&g, &machine, &a2),
        evaluate_assignment(&g, &machine, &a2, EvaluationModel::Precedence)
            .unwrap()
            .total(),
    );
    let lee = paper::lee_counterexample();
    let g = lee.singleton_clustered();
    let phases = paper::lee_paper_phases();
    let a3 = Assignment::from_sys_of(lee.indirect_optimal.clone()).unwrap();
    let a4 = Assignment::from_sys_of(lee.time_better.clone()).unwrap();
    println!(
        "Lee instance: cost-{} assignment runs in {} units, a cost-{} one in {}\n",
        lee_cost(&g, &machine, &a3, &phases),
        evaluate_assignment(&g, &machine, &a3, EvaluationModel::Precedence)
            .unwrap()
            .total(),
        lee_cost(&g, &machine, &a4, &phases),
        evaluate_assignment(&g, &machine, &a4, EvaluationModel::Precedence)
            .unwrap()
            .total(),
    );

    // --- The same effect on a real workload. -----------------------------
    println!("=== FFT butterfly (32 points) on {} ===\n", machine.name());
    let program = fft_butterfly(5, 3, 2).unwrap();
    let clustering = random_region_clustering(&program, machine.len(), &mut rng).unwrap();
    let clustered = ClusteredProblemGraph::new(program, clustering).unwrap();
    let phases = phases_by_level(&clustered);

    let ours = Mapper::new().map(&clustered, &machine, &mut rng).unwrap();
    let bokh = bokhari_mapping(&clustered, &machine, 20, &mut rng).unwrap();
    let leem = lee_mapping(&clustered, &machine, &phases, 20, &mut rng).unwrap();

    let total_of = |a: &Assignment| {
        evaluate_assignment(&clustered, &machine, a, EvaluationModel::Precedence)
            .unwrap()
            .total()
    };
    let mut table = Table::new(
        "objective comparison (lower bound is the floor for every mapper)",
        &["mapper", "its own objective", "total time", "% over LB"],
    );
    let lb = ours.lower_bound as f64;
    table.push_row(vec![
        "paper strategy (total time)".into(),
        format!("total = {}", ours.total_time),
        ours.total_time.to_string(),
        format!("{:.1}", 100.0 * ours.total_time as f64 / lb),
    ]);
    table.push_row(vec![
        "Bokhari (max cardinality)".into(),
        format!("cardinality = {}", bokh.cardinality),
        total_of(&bokh.assignment).to_string(),
        format!("{:.1}", 100.0 * total_of(&bokh.assignment) as f64 / lb),
    ]);
    table.push_row(vec![
        "Lee (min phased comm cost)".into(),
        format!("cost = {}", leem.cost),
        total_of(&leem.assignment).to_string(),
        format!("{:.1}", 100.0 * total_of(&leem.assignment) as f64 / lb),
    ]);
    println!("{}", table.render());
    assert!(ours.total_time <= total_of(&bokh.assignment));
    assert!(ours.total_time <= total_of(&leem.assignment));
    println!("the total-time objective dominates both indirect measures on this workload.");
}

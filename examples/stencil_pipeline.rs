//! A stencil sweep across machine topologies — the finite-element-style
//! workload of the paper's citation [7] (Sadayappan & Ercal,
//! "Nearest-Neighbor Mapping of Finite Element Graphs onto Processor
//! Meshes").
//!
//! ```text
//! cargo run --example stencil_pipeline
//! ```
//!
//! A 1-D stencil iterated over time maps naturally onto a chain of
//! processors; this example quantifies how much topology matters by
//! mapping the same clustered stencil onto a chain, ring, mesh, star,
//! hypercube and complete graph, and shows the §2.2 lesson in action:
//! the strategy optimizes *total time*, not an indirect proxy.

use mimd::core::evaluate::random_mapping_average;
use mimd::core::schedule::EvaluationModel;
use mimd::core::Mapper;
use mimd::report::Table;
use mimd::taskgraph::clustering::region::random_region_clustering;
use mimd::taskgraph::workloads::stencil_1d;
use mimd::taskgraph::ClusteredProblemGraph;
use mimd::topology::{chain, complete, hypercube, mesh2d, ring, star, SystemGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    // 16 cells × 8 time steps; compute dominates, messages are light.
    let program = stencil_1d(16, 8, 6, 2).unwrap();
    println!(
        "stencil: {} tasks, {} edges, sequential time {}\n",
        program.len(),
        program.graph().edge_count(),
        program.sequential_time()
    );

    let machines: Vec<SystemGraph> = vec![
        chain(8).unwrap(),
        ring(8).unwrap(),
        mesh2d(2, 4).unwrap(),
        star(8).unwrap(),
        hypercube(3).unwrap(),
        complete(8).unwrap(),
    ];

    let mut table = Table::new(
        "stencil_1d(16, 8) on 8-processor topologies",
        &[
            "topology",
            "diameter",
            "lower bound",
            "strategy",
            "% over LB",
            "random mean",
            "early stop",
        ],
    );
    for machine in &machines {
        let clustering = random_region_clustering(&program, machine.len(), &mut rng).unwrap();
        let clustered = ClusteredProblemGraph::new(program.clone(), clustering).unwrap();
        let result = Mapper::new().map(&clustered, machine, &mut rng).unwrap();
        let (rand_mean, _, _) = random_mapping_average(
            &clustered,
            machine,
            EvaluationModel::Precedence,
            32,
            &mut rng,
        )
        .unwrap();
        table.push_row(vec![
            machine.name().to_string(),
            machine.diameter().to_string(),
            result.lower_bound.to_string(),
            result.total_time.to_string(),
            format!("{:.1}", result.percent_over_lower_bound() - 100.0),
            format!("{rand_mean:.1}"),
            if result.refinement.reached_lower_bound {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    println!("{}", table.render());
    println!("the complete graph always achieves the lower bound (it IS the closure);");
    println!("low-diameter topologies come close, the star pays for its central bottleneck.");
}

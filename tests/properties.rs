//! Property-based tests (proptest) on the core invariants.
//!
//! Strategy: generate random layered DAGs + clusterings + topologies from
//! seeds, then check the theorems the paper proves and the invariants the
//! implementation relies on.

use proptest::prelude::*;

use mimd::core::critical::{CriticalAnalysis, CriticalityMode};
use mimd::core::evaluate::evaluate_assignment;
use mimd::core::ideal::IdealSchedule;
use mimd::core::schedule::{EvaluationModel, Schedule};
use mimd::core::{Assignment, Mapper};
use mimd::sim::{simulate, SimConfig};
use mimd::taskgraph::clustering::random::random_clustering;
use mimd::taskgraph::{ClusteredProblemGraph, GeneratorConfig, LayeredDagGenerator, ProblemGraph};
use mimd::topology::{hypercube, mesh2d, ring, SystemGraph, TopologySpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(np: usize, ns: usize, seed: u64) -> ClusteredProblemGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = LayeredDagGenerator::new(GeneratorConfig {
        tasks: np,
        avg_width: 5,
        ..GeneratorConfig::default()
    })
    .unwrap();
    let p = gen.generate(&mut rng);
    let c = random_clustering(&p, ns, &mut rng).unwrap();
    ClusteredProblemGraph::new(p, c).unwrap()
}

fn some_system(pick: u8, ns_pow: u32) -> SystemGraph {
    match pick % 3 {
        0 => hypercube(ns_pow).unwrap(),
        1 => ring(1 << ns_pow).unwrap(),
        _ => mesh2d(2, (1 << ns_pow) / 2).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 3: no assignment on any topology beats the ideal-graph
    /// lower bound.
    #[test]
    fn lower_bound_dominates_all_assignments(
        seed in 0u64..5000,
        pick in 0u8..3,
        assign_seed in 0u64..5000,
    ) {
        let ns = 8usize;
        let graph = instance(40, ns, seed);
        let system = some_system(pick, 3);
        let ideal = IdealSchedule::derive(&graph);
        let a = Assignment::random(ns, &mut StdRng::seed_from_u64(assign_seed));
        let eval = evaluate_assignment(&graph, &system, &a, EvaluationModel::Precedence).unwrap();
        prop_assert!(eval.total() >= ideal.lower_bound());
    }

    /// The serialized model never finishes earlier than the precedence
    /// model, per task and in total.
    #[test]
    fn serialization_is_monotone(seed in 0u64..5000, assign_seed in 0u64..5000) {
        let graph = instance(36, 6, seed);
        let system = ring(6).unwrap();
        let a = Assignment::random(6, &mut StdRng::seed_from_u64(assign_seed));
        let p = evaluate_assignment(&graph, &system, &a, EvaluationModel::Precedence).unwrap();
        let s = evaluate_assignment(&graph, &system, &a, EvaluationModel::Serialized).unwrap();
        prop_assert!(s.total() >= p.total());
        for t in 0..graph.num_tasks() {
            prop_assert!(s.schedule.start(t) >= p.schedule.start(t));
        }
    }

    /// The DES with paper switches reproduces the analytic schedule
    /// exactly — start times, end times and total.
    #[test]
    fn des_equals_analytic(seed in 0u64..5000, assign_seed in 0u64..5000) {
        let graph = instance(32, 8, seed);
        let system = hypercube(3).unwrap();
        let a = Assignment::random(8, &mut StdRng::seed_from_u64(assign_seed));
        let eval = evaluate_assignment(&graph, &system, &a, EvaluationModel::Precedence).unwrap();
        let des = simulate(&graph, &system, &a, SimConfig::paper()).unwrap();
        prop_assert_eq!(des.total, eval.total());
        prop_assert_eq!(des.start.as_slice(), eval.schedule.starts());
        prop_assert_eq!(des.end.as_slice(), eval.schedule.ends());
    }

    /// Theorem 1/2 operationally: increasing a critical edge's weight by
    /// one increases the lower bound; increasing an edge with slack >= 1
    /// does not.
    #[test]
    fn critical_edges_control_the_lower_bound(seed in 0u64..2000) {
        let graph = instance(30, 5, seed);
        let ideal = IdealSchedule::derive(&graph);
        let crit = CriticalAnalysis::analyze(&graph, &ideal, CriticalityMode::Extended);
        let lb = ideal.lower_bound();

        for (u, v, w) in graph.cross_edges().collect::<Vec<_>>() {
            // Bump edge (u, v) by 1 and re-derive the ideal schedule.
            let mut g2 = graph.problem().graph().clone();
            g2.add_edge(u, v, w + 1).unwrap();
            let p2 = ProblemGraph::new(g2, graph.problem().sizes().to_vec()).unwrap();
            let graph2 =
                ClusteredProblemGraph::new(p2, graph.clustering().clone()).unwrap();
            let lb2 = IdealSchedule::derive(&graph2).lower_bound();
            if crit.is_critical_edge(u, v) {
                prop_assert!(lb2 > lb, "critical edge ({u},{v}) must raise the bound");
            } else if ideal.slack(&graph, u, v) >= 1 {
                prop_assert_eq!(lb2, lb, "slack edge ({}, {}) must not raise the bound", u, v);
            }
        }
    }

    /// The mapper's result is always: lower_bound <= total <= initial
    /// total, with a valid bijection.
    #[test]
    fn mapper_invariants(seed in 0u64..5000, spec in 0u8..4) {
        let topo = match spec % 4 {
            0 => TopologySpec::Hypercube { dim: 3 },
            1 => TopologySpec::Mesh { rows: 2, cols: 4 },
            2 => TopologySpec::Ring { n: 8 },
            _ => TopologySpec::Random { n: 8, p: 0.2 },
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let system = topo.build(&mut rng).unwrap();
        let graph = instance(48, 8, seed ^ 0xabcd);
        let result = Mapper::new().map(&graph, &system, &mut rng).unwrap();
        prop_assert!(result.total_time >= result.lower_bound);
        prop_assert!(result.total_time <= result.initial_total);
        let mut seen = [false; 8];
        for c in 0..8 {
            let s = result.assignment.sys_of(c);
            prop_assert!(!seen[s]);
            seen[s] = true;
        }
        if result.refinement.reached_lower_bound {
            prop_assert_eq!(result.total_time, result.lower_bound);
        }
    }

    /// Schedules respect precedence: every task starts no earlier than
    /// each predecessor's end plus the charged communication.
    #[test]
    fn schedules_respect_precedence(seed in 0u64..5000, assign_seed in 0u64..5000) {
        let graph = instance(40, 8, seed);
        let system = hypercube(3).unwrap();
        let a = Assignment::random(8, &mut StdRng::seed_from_u64(assign_seed));
        let eval = evaluate_assignment(&graph, &system, &a, EvaluationModel::Precedence).unwrap();
        for t in 0..graph.num_tasks() {
            for &(u, _) in graph.problem().predecessors(t) {
                let w = graph.clus_weight(u, t);
                let comm = if w == 0 {
                    0
                } else {
                    let su = a.sys_of(graph.cluster_of(u));
                    let sv = a.sys_of(graph.cluster_of(t));
                    w * u64::from(system.hops(su, sv))
                };
                prop_assert!(eval.schedule.start(t) >= eval.schedule.end(u) + comm);
            }
        }
    }

    /// Ideal schedules are the closure case of evaluation: evaluating on
    /// a complete topology matches `IdealSchedule` exactly.
    #[test]
    fn ideal_is_evaluation_on_closure(seed in 0u64..5000) {
        let graph = instance(36, 6, seed);
        let closure = mimd::topology::complete(6).unwrap();
        let ideal = IdealSchedule::derive(&graph);
        let a = Assignment::random(6, &mut StdRng::seed_from_u64(seed));
        let eval = evaluate_assignment(&graph, &closure, &a, EvaluationModel::Precedence).unwrap();
        prop_assert_eq!(eval.total(), ideal.lower_bound());
    }

    /// Scheduling with a comm function that adds a constant never makes
    /// any task start earlier (monotonicity of the schedule operator).
    #[test]
    fn schedule_monotone_in_comm(seed in 0u64..5000, bump in 1u64..4) {
        let graph = instance(30, 5, seed);
        let base = Schedule::precedence(&graph, |u, v| graph.clus_weight(u, v));
        let bumped = Schedule::precedence(&graph, |u, v| {
            let w = graph.clus_weight(u, v);
            if w == 0 { 0 } else { w + bump }
        });
        for t in 0..graph.num_tasks() {
            prop_assert!(bumped.start(t) >= base.start(t));
        }
        prop_assert!(bumped.total() >= base.total());
    }
}

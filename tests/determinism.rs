//! Determinism guarantees: identical seeds reproduce identical results
//! through every stochastic component, and the deterministic components
//! are pure functions.

use mimd::baselines::annealing::{simulated_annealing, AnnealingSchedule};
use mimd::baselines::bokhari::bokhari_mapping;
use mimd::baselines::lee::{lee_mapping, phases_by_level};
use mimd::baselines::random_map::random_baseline;
use mimd::core::parallel::{parallel_refine, ParallelRefineConfig};
use mimd::core::refine::RefineConfig;
use mimd::core::schedule::EvaluationModel;
use mimd::core::Assignment;
use mimd::core::{Mapper, MapperConfig};
use mimd::taskgraph::clustering::region::random_region_clustering;
use mimd::taskgraph::{ClusteredProblemGraph, GeneratorConfig, LayeredDagGenerator};
use mimd::topology::{hypercube, random_topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(seed: u64) -> ClusteredProblemGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = LayeredDagGenerator::new(GeneratorConfig {
        tasks: 60,
        ..GeneratorConfig::default()
    })
    .unwrap();
    let p = gen.generate(&mut rng);
    let c = random_region_clustering(&p, 8, &mut rng).unwrap();
    ClusteredProblemGraph::new(p, c).unwrap()
}

#[test]
fn generator_and_clustering_reproduce() {
    assert_eq!(instance(5), instance(5));
    assert_ne!(instance(5), instance(6));
}

#[test]
fn random_topologies_reproduce() {
    let a = random_topology(12, 0.2, &mut StdRng::seed_from_u64(9)).unwrap();
    let b = random_topology(12, 0.2, &mut StdRng::seed_from_u64(9)).unwrap();
    assert_eq!(a.graph(), b.graph());
}

#[test]
fn mapper_reproduces_per_seed() {
    let graph = instance(1);
    let system = hypercube(3).unwrap();
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        Mapper::new().map(&graph, &system, &mut rng).unwrap()
    };
    let (a, b) = (run(3), run(3));
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.refinement.iterations_used, b.refinement.iterations_used);
}

#[test]
fn mapper_config_changes_results_not_invariants() {
    let graph = instance(2);
    let system = hypercube(3).unwrap();
    for config in [
        MapperConfig::default(),
        MapperConfig {
            refine_iterations: Some(0),
            ..MapperConfig::default()
        },
        MapperConfig {
            respect_pins: false,
            ..MapperConfig::default()
        },
        MapperConfig {
            unpinned_fallback: false,
            ..MapperConfig::default()
        },
        MapperConfig {
            model: EvaluationModel::Serialized,
            ..MapperConfig::default()
        },
    ] {
        let mut rng = StdRng::seed_from_u64(4);
        let r = Mapper::with_config(config)
            .map(&graph, &system, &mut rng)
            .unwrap();
        assert!(r.total_time >= r.lower_bound);
    }
}

#[test]
fn baselines_reproduce_per_seed() {
    let graph = instance(3);
    let system = hypercube(3).unwrap();
    let phases = phases_by_level(&graph);

    let b1 = bokhari_mapping(&graph, &system, 10, &mut StdRng::seed_from_u64(1)).unwrap();
    let b2 = bokhari_mapping(&graph, &system, 10, &mut StdRng::seed_from_u64(1)).unwrap();
    assert_eq!(b1, b2);

    let l1 = lee_mapping(&graph, &system, &phases, 5, &mut StdRng::seed_from_u64(2)).unwrap();
    let l2 = lee_mapping(&graph, &system, &phases, 5, &mut StdRng::seed_from_u64(2)).unwrap();
    assert_eq!(l1, l2);

    let s1 = simulated_annealing(
        &graph,
        &system,
        None,
        0,
        &AnnealingSchedule::quench(8),
        EvaluationModel::Precedence,
        &mut StdRng::seed_from_u64(3),
    )
    .unwrap();
    let s2 = simulated_annealing(
        &graph,
        &system,
        None,
        0,
        &AnnealingSchedule::quench(8),
        EvaluationModel::Precedence,
        &mut StdRng::seed_from_u64(3),
    )
    .unwrap();
    assert_eq!(s1.total, s2.total);

    let r1 = random_baseline(
        &graph,
        &system,
        EvaluationModel::Precedence,
        16,
        &mut StdRng::seed_from_u64(4),
    )
    .unwrap();
    let r2 = random_baseline(
        &graph,
        &system,
        EvaluationModel::Precedence,
        16,
        &mut StdRng::seed_from_u64(4),
    )
    .unwrap();
    assert_eq!(r1, r2);
}

#[test]
fn parallel_refine_single_thread_is_deterministic() {
    let graph = instance(4);
    let system = hypercube(3).unwrap();
    let start = Assignment::identity(8);
    let cfg = ParallelRefineConfig::new(32, 1, RefineConfig::paper(8));
    let a = parallel_refine(&graph, &system, &start, &[false; 8], 1, &cfg, 7).unwrap();
    let b = parallel_refine(&graph, &system, &start, &[false; 8], 1, &cfg, 7).unwrap();
    assert_eq!(a.total, b.total);
    assert_eq!(a.assignment, b.assignment);
}

#[test]
fn parallel_refine_multi_thread_never_regresses() {
    // Thread interleaving may change which optimal-equivalent assignment
    // wins, but the total is a monotone improvement over the start.
    let graph = instance(5);
    let system = hypercube(3).unwrap();
    let start = Assignment::identity(8);
    let t0 = mimd::core::evaluate::evaluate_assignment(
        &graph,
        &system,
        &start,
        EvaluationModel::Precedence,
    )
    .unwrap()
    .total();
    for threads in [2, 4] {
        let cfg = ParallelRefineConfig::new(64, threads, RefineConfig::paper(8));
        let out = parallel_refine(&graph, &system, &start, &[false; 8], 1, &cfg, 11).unwrap();
        assert!(out.total <= t0, "{threads} threads");
    }
}

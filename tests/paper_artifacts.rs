//! Every number the paper publishes, asserted in one place.
//!
//! EXPERIMENTS.md references this file as the machine-checked record of
//! paper-vs-reproduction fidelity for the worked example (Figs 2–6,
//! 18–24) and the §2.2 counterexamples (Figs 7–17).

use mimd::baselines::bokhari::cardinality;
use mimd::baselines::exhaustive::{exhaustive_optimum, for_each_assignment};
use mimd::baselines::lee::lee_cost;
use mimd::core::critical::{CriticalAnalysis, CriticalityMode};
use mimd::core::evaluate::evaluate_assignment;
use mimd::core::ideal::IdealSchedule;
use mimd::core::schedule::EvaluationModel;
use mimd::core::{Assignment, Mapper};
use mimd::taskgraph::{paper, AbstractGraph};
use mimd::topology::{hypercube, ring};
use rand::rngs::StdRng;
use rand::SeedableRng;

// ------------------------- worked example -------------------------------

#[test]
fn fig22b_ideal_start_end_times() {
    let g = paper::worked_example();
    let ideal = IdealSchedule::derive(&g);
    assert_eq!(ideal.schedule().starts(), &paper::WORKED_IDEAL_START);
    assert_eq!(ideal.schedule().ends(), &paper::WORKED_IDEAL_END);
}

#[test]
fn fig6_lower_bound_and_latest_tasks() {
    let g = paper::worked_example();
    let ideal = IdealSchedule::derive(&g);
    assert_eq!(ideal.lower_bound(), 14);
    // "tasks 9 and 11 are the latest tasks" (§2.1).
    assert_eq!(ideal.latest_tasks(), vec![8, 10]);
}

#[test]
fn fig22c_critical_problem_edges() {
    let g = paper::worked_example();
    let ideal = IdealSchedule::derive(&g);
    let crit = CriticalAnalysis::analyze(&g, &ideal, CriticalityMode::PaperExact);
    assert_eq!(crit.critical_edges(), &paper::WORKED_CRITICAL_EDGES);
}

#[test]
fn fig20b_critical_abstract_matrix() {
    let g = paper::worked_example();
    let ideal = IdealSchedule::derive(&g);
    let crit = CriticalAnalysis::analyze(&g, &ideal, CriticalityMode::PaperExact);
    // Row 0: (0 3 6 0 | 9); rows 1/2 mirror; row 3 zero.
    assert_eq!(crit.critical_abstract_weight(0, 1), 3);
    assert_eq!(crit.critical_abstract_weight(0, 2), 6);
    assert_eq!(crit.critical_abstract_weight(0, 3), 0);
    assert_eq!(crit.critical_degrees(), &[9, 3, 6, 0]);
}

#[test]
fn fig20c_mca_vector() {
    let g = paper::worked_example();
    // mca[2] = 13 is stated in the §3.3(c) text; 13/11 printed for
    // clusters 0/1. mca[3] is garbled in the scan; our reconstruction
    // yields 5 (documented in EXPERIMENTS.md).
    assert_eq!(AbstractGraph::new(&g).mca_vector(), &paper::WORKED_MCA);
}

#[test]
fn paper_text_slack_statements() {
    let g = paper::worked_example();
    let ideal = IdealSchedule::derive(&g);
    // "i_edge[7][9] = clus_edge[7][9]" — tight.
    assert_eq!(ideal.slack(&g, 6, 8), 0);
    // ec59: critical only if increased "by more than 2" — slack 2.
    assert_eq!(ideal.slack(&g, 4, 8), 2);
    // Task 4 (paper) starts at 1: i_start[4] = i_end[1] + 0, same cluster.
    assert_eq!(ideal.schedule().start(3), 1);
    // "task 9 has three predecessors, 5, 6, and 7" — the reconstruction
    // carries one extra slack predecessor (task 8, the mca[2] filler; see
    // EXPERIMENTS.md), but the paper's derivation is preserved: the
    // stated predecessors exist and max(end_j + clus_edge[j][9]) = 12.
    let preds: Vec<usize> = g
        .problem()
        .predecessors(8)
        .iter()
        .map(|&(u, _)| u + 1)
        .collect();
    for stated in [5, 6, 7] {
        assert!(preds.contains(&stated), "predecessor {stated} missing");
    }
    let start9 = g
        .problem()
        .predecessors(8)
        .iter()
        .map(|&(u, _)| ideal.schedule().end(u) + g.clus_weight(u, 8))
        .max()
        .unwrap();
    assert_eq!(start9, 12, "§4.1's worked derivation of i_start[9]");
}

#[test]
fn fig23_assignment_is_optimal_and_fig24_terminates() {
    let g = paper::worked_example();
    let sys = ring(4).unwrap();
    let fig23 = Assignment::from_sys_of(paper::WORKED_OPTIMAL_ASSIGNMENT.to_vec()).unwrap();
    let eval = evaluate_assignment(&g, &sys, &fig23, EvaluationModel::Precedence).unwrap();
    assert_eq!(
        eval.total(),
        14,
        "Fig 24: the assignment meets the lower bound"
    );
    // The pipeline reproduces it with zero refinement iterations.
    let mut rng = StdRng::seed_from_u64(0);
    let result = Mapper::new().map(&g, &sys, &mut rng).unwrap();
    assert!(result.is_provably_optimal());
    assert_eq!(result.refinement.iterations_used, 0);
}

#[test]
fn worked_example_exhaustive_optimum_is_14() {
    let g = paper::worked_example();
    let sys = ring(4).unwrap();
    let (_, t) = exhaustive_optimum(&g, &sys, EvaluationModel::Precedence).unwrap();
    assert_eq!(t, 14);
}

// ------------------------- §2.2 Bokhari case -----------------------------

#[test]
fn bokhari_case_full_claims() {
    let ce = paper::bokhari_counterexample();
    let g = ce.singleton_clustered();
    let sys = hypercube(3).unwrap();
    // System graph: 8 nodes, every node degree 3 (paper Fig 8).
    assert_eq!(sys.len(), 8);
    assert!(sys.degrees().iter().all(|&d| d == 3));
    // Problem node 3 has degree 4 > 3, so cardinality 9 is impossible.
    assert_eq!(g.problem().graph().degree(2), 4);

    let a1 = Assignment::from_sys_of(ce.indirect_optimal.clone()).unwrap();
    let a2 = Assignment::from_sys_of(ce.time_better.clone()).unwrap();
    assert_eq!(
        cardinality(&g, &sys, &a1),
        8,
        "A1 maps 8 of 9 edges on system edges"
    );
    let t1 = evaluate_assignment(&g, &sys, &a1, EvaluationModel::Precedence)
        .unwrap()
        .total();
    let t2 = evaluate_assignment(&g, &sys, &a2, EvaluationModel::Precedence)
        .unwrap()
        .total();
    assert_eq!((t1, t2), (23, 21), "paper: 23 vs 21 time units");

    // Exhaustive: 8 is the best cardinality; no cardinality-8 assignment
    // beats 23; the global optimum is 21.
    let mut best_card = 0;
    let mut best_t_at_8 = u64::MAX;
    let mut global = u64::MAX;
    for_each_assignment(8, |perm| {
        let a = Assignment::from_sys_of(perm.to_vec()).unwrap();
        let c = cardinality(&g, &sys, &a);
        let t = evaluate_assignment(&g, &sys, &a, EvaluationModel::Precedence)
            .unwrap()
            .total();
        best_card = best_card.max(c);
        if c == 8 {
            best_t_at_8 = best_t_at_8.min(t);
        }
        global = global.min(t);
    });
    assert_eq!(best_card, 8);
    assert_eq!(best_t_at_8, 23);
    assert_eq!(global, 21);
}

// ------------------------- §2.2 Lee case ---------------------------------

#[test]
fn lee_case_full_claims() {
    let ce = paper::lee_counterexample();
    let g = ce.singleton_clustered();
    let sys = hypercube(3).unwrap();
    let phases = paper::lee_paper_phases();

    let a3 = Assignment::from_sys_of(ce.indirect_optimal.clone()).unwrap();
    let a4 = Assignment::from_sys_of(ce.time_better.clone()).unwrap();

    // Fig 15: phases cost 3 + 4 + 1 + 3 = 11; Fig 17: 3 + 8 + 3 + 1 = 15.
    assert_eq!(lee_cost(&g, &sys, &a3, &phases), 11);
    assert_eq!(lee_cost(&g, &sys, &a4, &phases), 15);
    let t3 = evaluate_assignment(&g, &sys, &a3, EvaluationModel::Precedence)
        .unwrap()
        .total();
    let t4 = evaluate_assignment(&g, &sys, &a4, EvaluationModel::Precedence)
        .unwrap()
        .total();
    assert_eq!((t3, t4), (23, 21));

    // "It is easy to prove that assignment A3 has the minimum
    // communication cost" — by exhaustion.
    let mut min_cost = u64::MAX;
    for_each_assignment(8, |perm| {
        let a = Assignment::from_sys_of(perm.to_vec()).unwrap();
        min_cost = min_cost.min(lee_cost(&g, &sys, &a, &phases));
    });
    assert_eq!(min_cost, 11);

    // Per-edge weights recovered from Figs 15/17.
    let w = |u: usize, v: usize| g.problem().graph().weight(u - 1, v - 1).unwrap();
    assert_eq!(w(1, 3), 3);
    assert_eq!(w(2, 3), 3);
    assert_eq!(w(2, 7), 2);
    assert_eq!(w(3, 4), 4);
    assert_eq!(w(3, 5), 2);
    assert_eq!(w(4, 6), 1);
    assert_eq!(w(5, 8), 3);
}

//! End-to-end integration tests: every crate in one pipeline.

use mimd::core::evaluate::{evaluate_assignment, random_mapping_average};
use mimd::core::schedule::EvaluationModel;
use mimd::core::{Assignment, Mapper, MapperConfig};
use mimd::sim::{simulate, SimConfig};
use mimd::taskgraph::clustering::comm_greedy::comm_greedy_clustering;
use mimd::taskgraph::clustering::load_balance::load_balanced_clustering;
use mimd::taskgraph::clustering::region::random_region_clustering;
use mimd::taskgraph::workloads;
use mimd::taskgraph::{ClusteredProblemGraph, GeneratorConfig, LayeredDagGenerator};
use mimd::topology::{binary_tree, chain, complete, hypercube, mesh2d, ring, star, torus2d};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_instance(np: usize, ns: usize, seed: u64) -> ClusteredProblemGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = LayeredDagGenerator::new(GeneratorConfig {
        tasks: np,
        locality_window: Some(2),
        ..GeneratorConfig::default()
    })
    .unwrap();
    let p = gen.generate(&mut rng);
    let c = random_region_clustering(&p, ns, &mut rng).unwrap();
    ClusteredProblemGraph::new(p, c).unwrap()
}

#[test]
fn full_pipeline_on_every_topology_family() {
    let systems = [
        hypercube(3).unwrap(),
        mesh2d(2, 4).unwrap(),
        torus2d(2, 4).unwrap(),
        ring(8).unwrap(),
        chain(8).unwrap(),
        star(8).unwrap(),
        binary_tree(8).unwrap(),
        complete(8).unwrap(),
    ];
    for (i, system) in systems.iter().enumerate() {
        let graph = random_instance(64, 8, 100 + i as u64);
        let mut rng = StdRng::seed_from_u64(i as u64);
        let result = Mapper::new().map(&graph, system, &mut rng).unwrap();
        assert!(
            result.total_time >= result.lower_bound,
            "{}: total below lower bound",
            system.name()
        );
        assert!(
            result.total_time <= result.initial_total,
            "{}",
            system.name()
        );
        // The final assignment is a bijection.
        let mut seen = [false; 8];
        for c in 0..8 {
            let s = result.assignment.sys_of(c);
            assert!(!seen[s], "{}: processor used twice", system.name());
            seen[s] = true;
        }
    }
}

#[test]
fn complete_topology_always_reaches_lower_bound() {
    // The complete graph IS the closure, so Theorem 3 applies directly.
    for seed in 0..5 {
        let graph = random_instance(50, 6, seed);
        let system = complete(6).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let result = Mapper::new().map(&graph, &system, &mut rng).unwrap();
        assert!(result.is_provably_optimal(), "seed {seed}");
        assert_eq!(
            result.refinement.iterations_used, 0,
            "termination fires before refining"
        );
    }
}

#[test]
fn strategy_beats_random_mapping_across_workloads() {
    let machine = hypercube(3).unwrap();
    let programs = vec![
        workloads::gaussian_elimination(10, 3, 5, 2).unwrap(),
        workloads::stencil_1d(12, 6, 5, 2).unwrap(),
        workloads::fft_butterfly(4, 4, 2).unwrap(),
        workloads::divide_and_conquer(4, 1, 6, 2, 2).unwrap(),
        workloads::pipeline(4, 16, 4, 3).unwrap(),
    ];
    let mut wins = 0;
    let mut total = 0;
    for (i, program) in programs.into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(10 + i as u64);
        let clustering = random_region_clustering(&program, 8, &mut rng).unwrap();
        let graph = ClusteredProblemGraph::new(program, clustering).unwrap();
        let result = Mapper::new().map(&graph, &machine, &mut rng).unwrap();
        let (mean, _, _) =
            random_mapping_average(&graph, &machine, EvaluationModel::Precedence, 24, &mut rng)
                .unwrap();
        total += 1;
        if (result.total_time as f64) <= mean {
            wins += 1;
        }
    }
    assert_eq!(
        wins, total,
        "strategy should beat the random-mapping mean on every workload"
    );
}

#[test]
fn simulator_confirms_analytic_totals_for_mapped_workloads() {
    let machine = mesh2d(3, 3).unwrap();
    for seed in 0..4 {
        let graph = random_instance(72, 9, 40 + seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let result = Mapper::new().map(&graph, &machine, &mut rng).unwrap();
        let des = simulate(&graph, &machine, &result.assignment, SimConfig::paper()).unwrap();
        assert_eq!(des.total, result.total_time, "seed {seed}");
        // Realistic extensions only lengthen the schedule.
        let realistic =
            simulate(&graph, &machine, &result.assignment, SimConfig::realistic()).unwrap();
        assert!(realistic.total >= des.total);
    }
}

#[test]
fn clustering_front_ends_compose_with_the_mapper() {
    let program = workloads::gaussian_elimination(10, 3, 5, 2).unwrap();
    let machine = hypercube(3).unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let clusterings = vec![
        random_region_clustering(&program, 8, &mut rng).unwrap(),
        comm_greedy_clustering(&program, 8, 1.5).unwrap(),
        load_balanced_clustering(&program, 8).unwrap(),
    ];
    for clustering in clusterings {
        let graph = ClusteredProblemGraph::new(program.clone(), clustering).unwrap();
        let result = Mapper::new().map(&graph, &machine, &mut rng).unwrap();
        assert!(result.total_time >= result.lower_bound);
    }
}

#[test]
fn serialized_model_pipeline_is_consistent() {
    let graph = random_instance(48, 8, 7);
    let machine = hypercube(3).unwrap();
    let config = MapperConfig {
        model: EvaluationModel::Serialized,
        ..MapperConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let result = Mapper::with_config(config)
        .map(&graph, &machine, &mut rng)
        .unwrap();
    // Serialized totals from the DES agree with the analytic serialized
    // evaluation of the same assignment.
    let analytic = evaluate_assignment(
        &graph,
        &machine,
        &result.assignment,
        EvaluationModel::Serialized,
    )
    .unwrap();
    let des = simulate(
        &graph,
        &machine,
        &result.assignment,
        SimConfig {
            serialize_processors: true,
            link_contention: false,
        },
    )
    .unwrap();
    assert_eq!(analytic.total(), des.total);
    assert_eq!(analytic.total(), result.total_time);
}

#[test]
fn identity_and_random_assignments_evaluate_consistently() {
    let graph = random_instance(40, 5, 9);
    let machine = ring(5).unwrap();
    let identity = Assignment::identity(5);
    let e1 = evaluate_assignment(&graph, &machine, &identity, EvaluationModel::Precedence).unwrap();
    let e2 = evaluate_assignment(&graph, &machine, &identity, EvaluationModel::Precedence).unwrap();
    assert_eq!(e1.total(), e2.total(), "evaluation is a pure function");
    // Every task ends after it starts by exactly its size.
    for t in 0..graph.num_tasks() {
        assert_eq!(
            e1.schedule.end(t) - e1.schedule.start(t),
            graph.problem().size(t),
            "task {t}"
        );
    }
}

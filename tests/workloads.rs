//! Workload-level integration tests: each structured workload maps
//! sensibly onto its natural topology, and topology/workload affinity
//! behaves as HPC folklore predicts.

use mimd::core::evaluate::evaluate_assignment;
use mimd::core::schedule::EvaluationModel;
use mimd::core::{IdealSchedule, Mapper};
use mimd::sim::{simulate, simulate_heterogeneous, SimConfig};
use mimd::taskgraph::clustering::comm_greedy::comm_greedy_clustering;
use mimd::taskgraph::workloads;
use mimd::taskgraph::ClusteredProblemGraph;
use mimd::topology::{chain, hypercube, ring, SystemGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cluster_onto(
    program: &mimd::taskgraph::ProblemGraph,
    system: &SystemGraph,
) -> ClusteredProblemGraph {
    let clustering = comm_greedy_clustering(program, system.len(), 1.5).unwrap();
    ClusteredProblemGraph::new(program.clone(), clustering).unwrap()
}

#[test]
fn fft_prefers_the_hypercube_over_the_chain() {
    // The butterfly's communication pattern IS the hypercube; a chain
    // stretches the long-range stages.
    let program = workloads::fft_butterfly(3, 3, 4).unwrap();
    let cube = hypercube(3).unwrap();
    let line = chain(8).unwrap();
    let mut totals = Vec::new();
    for machine in [&cube, &line] {
        let graph = cluster_onto(&program, machine);
        let mut rng = StdRng::seed_from_u64(3);
        let result = Mapper::new().map(&graph, machine, &mut rng).unwrap();
        totals.push(result.total_time);
    }
    assert!(
        totals[0] <= totals[1],
        "hypercube {} should beat chain {}",
        totals[0],
        totals[1]
    );
}

#[test]
fn stencil_maps_near_optimally_on_the_ring() {
    // A 1-D stencil's cluster graph is a chain; a ring hosts a chain at
    // dilation 1, so the strategy should land at (or very near) the
    // lower bound.
    let program = workloads::stencil_1d(16, 6, 8, 1).unwrap();
    let machine = ring(8).unwrap();
    let graph = cluster_onto(&program, &machine);
    let mut rng = StdRng::seed_from_u64(4);
    let result = Mapper::new().map(&graph, &machine, &mut rng).unwrap();
    assert!(
        result.percent_over_lower_bound() <= 115.0,
        "stencil on ring should be near the bound, got {:.1}%",
        result.percent_over_lower_bound()
    );
}

#[test]
fn gaussian_elimination_lower_bound_grows_quadratically_enough() {
    // Sanity on the workload generator itself: the GE ideal schedule is
    // dominated by the sequential pivot chain.
    let small = workloads::gaussian_elimination(6, 2, 3, 1).unwrap();
    let large = workloads::gaussian_elimination(12, 2, 3, 1).unwrap();
    assert!(large.critical_path() > small.critical_path());
    assert!(large.len() > small.len() * 3);
}

#[test]
fn divide_and_conquer_balances_across_processors() {
    let program = workloads::divide_and_conquer(3, 1, 9, 1, 1).unwrap();
    let machine = hypercube(3).unwrap();
    let graph = cluster_onto(&program, &machine);
    let mut rng = StdRng::seed_from_u64(5);
    let result = Mapper::new().map(&graph, &machine, &mut rng).unwrap();
    // 8 leaves of weight 9 on 8 processors: the serialized model must
    // still fit well under fully-sequential execution.
    let serialized = evaluate_assignment(
        &graph,
        &machine,
        &result.assignment,
        EvaluationModel::Serialized,
    )
    .unwrap();
    assert!(serialized.total() < graph.problem().sequential_time());
}

#[test]
fn pipeline_throughput_degrades_gracefully_with_slow_processors() {
    let program = workloads::pipeline(4, 16, 3, 1).unwrap();
    let machine = ring(4).unwrap();
    let graph = cluster_onto(&program, &machine);
    let mut rng = StdRng::seed_from_u64(6);
    let result = Mapper::new().map(&graph, &machine, &mut rng).unwrap();
    let base = simulate(&graph, &machine, &result.assignment, SimConfig::paper()).unwrap();
    let mut prev = base.total;
    for factor in [2u32, 4, 8] {
        let mut slow = vec![1u32; 4];
        slow[0] = factor;
        let het = simulate_heterogeneous(
            &graph,
            &machine,
            &result.assignment,
            SimConfig::paper(),
            &slow,
        )
        .unwrap();
        assert!(het.total >= prev, "factor {factor} regressed");
        prev = het.total;
    }
}

#[test]
fn ideal_bound_is_tight_for_embarrassingly_parallel_work() {
    // No cross edges at all: the clustered graph's lower bound equals
    // the longest single chain, and every mapping achieves it.
    let program = workloads::pipeline(1, 12, 5, 1).unwrap(); // a single chain
    let machine = ring(4).unwrap();
    let clustering = mimd::taskgraph::clustering::chains::chain_clustering(&program, 4).unwrap();
    let graph = ClusteredProblemGraph::new(program, clustering).unwrap();
    let ideal = IdealSchedule::derive(&graph);
    let mut rng = StdRng::seed_from_u64(7);
    let result = Mapper::new().map(&graph, &machine, &mut rng).unwrap();
    assert!(result.total_time >= ideal.lower_bound());
}
